"""Sharded serving: sensor-graph partitions, owner routing, halo exchange.

The serving layer reuses the partitioner the paper develops for its
distribution ablation (:func:`repro.graph.partition.partition_graph`):
sensors are split into balanced shards, each shard *owns* its sensors'
streaming observations and answers forecast requests for them.  A request
for sensor *s* is routed to ``owner_of(s)``; only the owning shard (plus
the peers it fetches halo columns from) does work.

**Why shards still see the whole graph.**  An ST-GNN's receptive field
grows by ``k_hops`` per diffusion per recurrent step, so over a
12-step horizon a DCRNN's exact receptive field is effectively the entire
sensor network — which is precisely the paper's argument *against*
partitioned training.  Sharded serving therefore buys **data locality and
routing** (each shard stores only its own columns; peers' columns arrive
as byte-accounted halo fetches over a :class:`~repro.runtime.
process_group.ProcessGroup`), not reduced compute.  Exact inference assembles the
full input (``receptive_hops=None``, the default), which makes sharded
predictions bitwise identical to single-shard inference; passing a finite
``receptive_hops`` truncates the halo to a k-hop neighbourhood and
zero-fills the rest — cheaper traffic, approximate forecasts.

**Failover.**  A :class:`ShardWorker` can die (killed explicitly via
:meth:`ShardedSession.kill_worker`, or on schedule through a
:class:`~repro.runtime.faults.FaultPlan` ``worker_crash`` event); its
store state is lost.  The session detects the death lazily at the next
serving-path touch and fails over: a standby replica is promoted onto
the dead shard's exact ownership when one is available, otherwise the
survivors re-partition the graph, and in both cases the rebuilt feature
stores are warmed by replaying the session's bounded raw-observation
log.  Replayed ingests run the exact standardization arithmetic of the
originals, so post-failover predictions equal the unsharded session's —
the chaos tier pins this, and every failover's rebuild latency is
recorded as a :class:`FailoverEvent`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.graph.partition import partition_graph
from repro.kernels.precision import resolve_store_dtype
from repro.nn.module import assert_inference_mode
from repro.preprocessing.scaler import StandardScaler
from repro.runtime.fabric.shm import SharedArrayPool
from repro.runtime.process_group import ProcessGroup, as_process_group
from repro.serving.cache import FeatureStore
from repro.utils.errors import ShapeError


def halo_nodes(weights: sp.spmatrix, owned: np.ndarray,
               hops: int | None, num_nodes: int) -> np.ndarray:
    """Nodes outside ``owned`` whose features the shard needs.

    ``hops=None`` returns every non-owned node (exact inference); a finite
    hop count expands the owned set along the symmetrized adjacency
    pattern and returns the expansion minus the owned set.
    """
    owned_mask = np.zeros(num_nodes, dtype=bool)
    owned_mask[owned] = True
    if hops is None:
        return np.flatnonzero(~owned_mask)
    pattern = ((weights + weights.T) != 0).tocsr()
    reach = owned_mask.copy()
    for _ in range(max(int(hops), 0)):
        reach = reach | (pattern @ reach)
    return np.flatnonzero(reach & ~owned_mask)


@dataclass
class ShardWorker:
    """One shard: its owned sensors, halo set, and local state."""

    shard_id: int
    owned: np.ndarray           # sorted node ids this shard owns
    halo: np.ndarray            # non-owned node ids it must fetch
    store: FeatureStore | None  # owned-column observations only
    assemble: np.ndarray        # [horizon, num_nodes, features] input buffer
    own_window: np.ndarray      # [horizon, len(owned), features] shared view
    alive: bool = True          # dead workers trigger failover on detection
    window_version: int = -1    # session version own_window was built at


@dataclass(frozen=True)
class FailoverEvent:
    """One completed failover: which shards died and what it cost."""

    shards: tuple[int, ...]     # shard ids that were dead when detected
    mode: str                   # "standby" | "repartition"
    seconds: float              # wall time to rebuild workers + replay state
    at_request: int             # requests_served when the failure surfaced
    num_shards_after: int


@dataclass(frozen=True)
class ScaleEvent:
    """One deliberate fleet resize (autoscaler- or operator-driven)."""

    from_shards: int
    to_shards: int
    mode: str                   # "scale_up" | "scale_down"
    seconds: float              # wall time to re-partition + replay state
    at_request: int             # requests_served when the resize ran
    standby_used: int           # spares consumed to cover added shards
    standby_returned: int       # retired shards parked back as spares


class ShardedSession:
    """Multi-worker serving session over a partitioned sensor graph.

    Functionally mirrors :class:`~repro.serving.session.ModelSession`
    (``predict`` / ``ingest`` / ``forecast_current`` /
    ``to_original_units``), so the :class:`~repro.serving.service.
    ForecastService` facade treats both interchangeably.  All shards run
    in-process and share one model instance (parameters are replicated in
    a real deployment; simulation shares memory), while data movement is
    charged to a :class:`ProcessGroup` with one rank per shard — the same
    collectives layer the DDP trainers use.
    """

    def __init__(self, model: Any, scaler: StandardScaler | None,
                 graph: Any, *, num_shards: int, spec: Any = None,
                 max_batch: int = 32, receptive_hops: int | None = None,
                 store_capacity: int | None = None,
                 store_dtype="float32",
                 comm: ProcessGroup | None = None,
                 add_time_feature: bool | None = None,
                 num_standby: int = 0, fault_plan: Any = None):
        self.model = model.eval()
        self.scaler = scaler
        self.graph = graph
        self.spec = spec
        self.num_shards = int(num_shards)
        self.max_batch = int(max_batch)
        self.receptive_hops = receptive_hops
        self.horizon = int(model.horizon)
        self.num_nodes = int(model.num_nodes)
        self.in_features = int(model.in_features)
        if graph.num_nodes != self.num_nodes:
            raise ShapeError(f"graph has {graph.num_nodes} nodes but model "
                             f"expects {self.num_nodes}")
        self.assignment = partition_graph(graph.weights, self.num_shards)
        self.comm = as_process_group(comm, world_size=self.num_shards)
        if self.comm.world_size != self.num_shards:
            raise ValueError("process group world size must equal num_shards")

        capacity = store_capacity or 4 * self.horizon
        if add_time_feature is None:
            add_time_feature = self._guess_time_feature()
        self.add_time_feature = bool(add_time_feature)
        self._store_capacity = capacity
        # Storage precision for the per-shard feature stores: windows
        # still materialise into float32 compute buffers (cast on read),
        # so "float16" halves each shard's resident ring at unchanged
        # model math.
        self.store_dtype = resolve_store_dtype(store_dtype) or np.float32
        # Fault tolerance: spare replica slots, the scheduled chaos plan,
        # and a bounded raw-observation log (one full store capacity) that
        # failover replays into rebuilt workers' feature stores.
        self.num_standby = int(num_standby)
        self.standby = self.num_standby
        self.fault_plan = fault_plan
        self._fault_fired: set[int] = set()
        self.failover_events: list[FailoverEvent] = []
        self.scale_events: list[ScaleEvent] = []
        self.faults_dropped: list[str] = []
        self._ingest_log: deque = deque(maxlen=capacity)
        self.workers: list[ShardWorker] = [
            self._build_worker(s, np.flatnonzero(self.assignment == s))
            for s in range(self.num_shards)]
        self._validate_ownership(self.workers)
        # Zero-copy halo exchange: every worker's own_window lives in one
        # shared-memory pool, so a peer consuming halo columns reads the
        # owner's materialised window *view* directly instead of forcing
        # the owner to rebuild it per consumer (S materialisations per
        # version instead of S*(S-1)).  The version counter bumps on every
        # ingest; _fresh_own_window re-materialises at most once per bump.
        self._window_pool: SharedArrayPool | None = None
        self._window_version = 0
        self._rebuild_window_pool()
        self._in_buf = np.empty(
            (self.max_batch, self.horizon, self.num_nodes, self.in_features),
            dtype=np.float32)
        self._merged = np.empty((self.horizon, self.num_nodes, 1), np.float32)
        self._window_buf = np.empty(
            (self.horizon, self.num_nodes, self.in_features), np.float32)
        self.requests_served = 0

    def _build_worker(self, shard_id: int, owned: np.ndarray) -> ShardWorker:
        """One shard worker owning ``owned``, with fresh halo/store/buffers."""
        halo = halo_nodes(self.graph.weights, owned, self.receptive_hops,
                          self.num_nodes)
        store = None
        if self.scaler is not None:
            store = FeatureStore(
                self.scaler, num_nodes=len(owned),
                raw_features=self.in_features - int(self.add_time_feature),
                capacity=self._store_capacity,
                add_time_feature=self.add_time_feature,
                dtype=self.store_dtype)
        return ShardWorker(
            shard_id=shard_id, owned=owned, halo=halo, store=store,
            assemble=np.zeros((self.horizon, self.num_nodes,
                               self.in_features), np.float32),
            own_window=np.empty((self.horizon, len(owned),
                                 self.in_features), np.float32))

    def _rebuild_window_pool(self) -> None:
        """Re-back every worker's ``own_window`` onto one shared pool.

        Called at construction and after any failover that created fresh
        workers: the pool views replace the workers' private scratch
        arrays, cache stamps reset, and the pool is sealed immediately so
        a session abandoned without cleanup cannot leak a shm name.
        """
        if self._window_pool is not None:
            self._window_pool.destroy()
        pool = SharedArrayPool([w.own_window for w in self.workers],
                               name_hint="halo-windows")
        pool.seal()
        for w, view in zip(self.workers, pool.arrays):
            w.own_window = view
            w.window_version = -1
        self._window_pool = pool

    def _fresh_own_window(self, w: ShardWorker) -> np.ndarray:
        """``w``'s owned-columns window, materialised at most once per
        ingest version.  Peers consuming halo columns call this too and
        get the owner's *shared view* — the zero-copy half of the halo
        exchange (the byte accounting of the logical transfer stays with
        the caller)."""
        if w.window_version != self._window_version:
            w.store.window(self.horizon, out=w.own_window)
            w.window_version = self._window_version
        return w.own_window

    def _guess_time_feature(self) -> bool:
        # Fallback when the builder did not say (direct construction
        # without ``add_time_feature=``): traffic models train on raw
        # signal + time-of-day, which is the only catalog shape with two
        # input channels.  ``repro.api`` always passes the dataset's
        # domain instead of relying on this.
        return self.in_features == 2

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def owner_of(self, node: int) -> int:
        """The shard that owns sensor ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return int(self.assignment[node])

    # ------------------------------------------------------------------
    # Fault tolerance: detection, standby promotion, re-partitioning
    # ------------------------------------------------------------------
    def kill_worker(self, shard_id: int) -> None:
        """Mark a shard worker dead; its local store state is *lost*.

        Failover happens at the next serving-path touch (detection is
        lazy, like a missed heartbeat), through :meth:`_ensure_healthy`.
        """
        if not 0 <= shard_id < len(self.workers):
            raise IndexError(f"shard {shard_id} out of range "
                             f"[0, {len(self.workers)})")
        w = self.workers[shard_id]
        w.alive = False
        w.store = None

    def _maybe_inject_faults(self) -> None:
        """Fire any scheduled ``worker_crash`` events that are due.

        A due event whose target shard no longer exists (a repartition
        shrank the worker list) or is already dead cannot be delivered;
        it is recorded in :attr:`faults_dropped` instead of silently
        vanishing, so a chaos run can assert its schedule was consumed.
        """
        if self.fault_plan is None:
            return
        for i, ev in self.fault_plan.serving_events():
            if i in self._fault_fired or self.requests_served < ev.request:
                continue
            self._fault_fired.add(i)
            if ev.shard < len(self.workers) and self.workers[ev.shard].alive:
                self.kill_worker(ev.shard)
            else:
                self.faults_dropped.append(ev.encode())

    def _ensure_healthy(self) -> None:
        """Serving-path gate: inject due faults, then fail over any dead
        workers before a request touches them."""
        self._maybe_inject_faults()
        if any(not w.alive for w in self.workers):
            self._failover()

    def _failover(self) -> None:
        """Rebuild serving capacity after worker deaths.

        If enough standby replicas remain to cover *every* dead shard,
        each one is *promoted onto a standby*: same ownership, fresh
        store replayed from the observation log — the partition (and
        therefore every halo set) is unchanged.  Otherwise the survivors
        *re-partition*: the graph is re-split over the largest
        power-of-two shard count the surviving workers support (the
        partitioner's constraint), every store is rebuilt from the log,
        and any standby capacity is deliberately *retained* for a later
        failure rather than half-spent on a partition that is being
        discarded anyway.  Either way, post-failover windows are
        assembled from the same replayed observations the dead worker
        held, so predictions stay shard-invariant.
        """
        t0 = time.perf_counter()
        dead = tuple(w.shard_id for w in self.workers if not w.alive)
        alive = [w for w in self.workers if w.alive]
        if self.standby >= len(dead):
            # Promotion inherits the dead workers' ownership verbatim, so
            # check it is still a partition *before* rebuilding onto it —
            # building a worker on corrupt ownership would crash (or
            # worse, merge) less legibly.
            self._validate_ownership(self.workers)
            self.standby -= len(dead)
            for shard_id in dead:
                old = self.workers[shard_id]
                fresh = self._build_worker(shard_id, old.owned)
                self._replay_into(fresh)
                self.workers[shard_id] = fresh
            mode = "standby"
        else:
            if not alive:
                raise RuntimeError(
                    f"every shard worker is dead ({len(dead)} down) and "
                    f"{self.standby} standby replica(s) cannot cover them; "
                    f"the sharded session cannot recover")
            new_num = 1 << (len(alive).bit_length() - 1)
            self.num_shards = new_num
            self.assignment = partition_graph(self.graph.weights, new_num)
            self.workers = [
                self._build_worker(s, np.flatnonzero(self.assignment == s))
                for s in range(new_num)]
            for w in self.workers:
                self._replay_into(w)
            mode = "repartition"
        self._validate_ownership(self.workers)
        # Fresh workers carry private scratch windows; fold them back
        # into one shared pool (and reset every cache stamp — replay
        # changed store contents without bumping the version).
        self._rebuild_window_pool()
        self.failover_events.append(FailoverEvent(
            shards=dead, mode=mode, seconds=time.perf_counter() - t0,
            at_request=self.requests_served,
            num_shards_after=len(self.workers)))

    def _replay_into(self, worker: ShardWorker) -> None:
        """Warm a rebuilt worker's store from the raw observation log."""
        if worker.store is None:
            return
        for values, ts in self._ingest_log:
            worker.store.ingest(values[worker.owned], ts)

    @staticmethod
    def _describe_nodes(ids: np.ndarray) -> str:
        shown = ", ".join(str(int(i)) for i in ids[:8])
        return shown + (", ..." if len(ids) > 8 else "")

    def _validate_ownership(self, workers: list[ShardWorker]) -> None:
        """Refuse any worker set that does not *partition* the sensors.

        The merge paths (:meth:`predict`, :meth:`forecast_current`) write
        ``out[:, :, w.owned]`` per shard, so an overlapping assignment
        would let one shard silently overwrite another's forecast and a
        gap would leave stale buffer contents in the output.  Every
        worker-list rebuild (construction, failover, :meth:`scale_to`)
        runs through this gate before the new fleet serves a request.
        """
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for w in workers:
            owned = np.asarray(w.owned)
            if owned.size and (int(owned.min()) < 0
                               or int(owned.max()) >= self.num_nodes):
                raise ShapeError(
                    f"shard {w.shard_id} claims sensors outside "
                    f"[0, {self.num_nodes})")
            np.add.at(counts, owned.astype(np.int64), 1)
        dup = np.flatnonzero(counts > 1)
        if dup.size:
            raise ShapeError(
                f"overlapping shard assignment: {dup.size} sensor(s) owned "
                f"by more than one shard ({self._describe_nodes(dup)}); a "
                f"double-served sensor lets one shard's merge silently "
                f"overwrite another's forecast, so the partition is refused")
        missing = np.flatnonzero(counts == 0)
        if missing.size:
            raise ShapeError(
                f"incomplete shard assignment: {missing.size} sensor(s) "
                f"owned by no shard ({self._describe_nodes(missing)}); "
                f"their merged forecasts would be stale buffer contents")

    # ------------------------------------------------------------------
    # Elastic scaling: deliberate fleet resizes
    # ------------------------------------------------------------------
    def scale_to(self, num_shards: int, *,
                 assignment: np.ndarray | None = None) -> ScaleEvent | None:
        """Resize the fleet to ``num_shards`` workers, live.

        The session first resolves any pending failures (a resize must
        not mask a death), then re-partitions the graph — or adopts an
        explicit ``assignment`` vector, which is validated to be a true
        partition (no overlaps, no gaps) before any worker serves from
        it — builds the new workers, and warms every store by replaying
        the bounded observation log, exactly like a repartition failover.
        Post-scale predictions therefore stay bitwise identical to the
        pre-scale (and unsharded) session's for any window the log still
        covers.

        Standby accounting: a scale-up consumes spare replicas to cover
        the added shards (capacity that was parked is now serving); a
        scale-down parks retired workers back as spares, up to the
        configured ``num_standby`` cap.

        When the new worker count differs from the process group's world
        size, a fresh simulated group is provisioned at the new world
        (rank fleets are not resizable in place); byte accounting
        restarts with it, and a custom fabric passed at construction is
        replaced by the simulated one.

        Returns the recorded :class:`ScaleEvent`, or ``None`` when the
        fleet is already the requested size and no explicit assignment
        was given.
        """
        self._ensure_healthy()
        t0 = time.perf_counter()
        new_num = int(num_shards)
        if new_num < 1:
            raise ValueError(f"cannot scale to {new_num} shards")
        old_num = self.num_shards
        if new_num == old_num and assignment is None:
            return None
        if assignment is None:
            new_assignment = partition_graph(self.graph.weights, new_num)
        else:
            new_assignment = np.asarray(assignment, dtype=np.int64).ravel()
            if new_assignment.shape != (self.num_nodes,):
                raise ShapeError(
                    f"assignment must map all {self.num_nodes} sensors, "
                    f"got shape {np.asarray(assignment).shape}")
        workers = [self._build_worker(s, np.flatnonzero(new_assignment == s))
                   for s in range(new_num)]
        self._validate_ownership(workers)
        for w in workers:
            self._replay_into(w)
        standby_used = standby_returned = 0
        if new_num > old_num:
            standby_used = min(self.standby, new_num - old_num)
            self.standby -= standby_used
            mode = "scale_up"
        elif new_num < old_num:
            standby_returned = min(old_num - new_num,
                                   self.num_standby - self.standby)
            self.standby += standby_returned
            mode = "scale_down"
        else:
            mode = "repartition"
        self.num_shards = new_num
        self.assignment = new_assignment
        self.workers = workers
        if self.comm.world_size != new_num:
            self.comm = as_process_group(None, world_size=new_num)
        self._rebuild_window_pool()
        event = ScaleEvent(
            from_shards=old_num, to_shards=new_num, mode=mode,
            seconds=time.perf_counter() - t0,
            at_request=self.requests_served,
            standby_used=standby_used, standby_returned=standby_returned)
        self.scale_events.append(event)
        return event

    # ------------------------------------------------------------------
    # Streaming observations (scattered to owner shards)
    # ------------------------------------------------------------------
    def ingest(self, values: np.ndarray, timestamp_minutes: float) -> None:
        """Scatter one full observation row to each shard's local store."""
        self._ensure_healthy()
        values = np.asarray(values)
        # Validate the *full* row here: each shard's store only ever sees
        # its owned slice, which can be shape-valid even when the row is
        # not (fancy indexing happily slices an over-long row).
        raw = self.in_features - int(self.add_time_feature)
        if values.shape != (self.num_nodes, raw):
            raise ShapeError(f"expected a {(self.num_nodes, raw)} "
                             f"observation row, got {values.shape}")
        for w in self.workers:
            if w.store is None:
                raise RuntimeError("sharded session built without a scaler "
                                   "has no stores to ingest into")
            w.store.ingest(values[w.owned], timestamp_minutes)
        # Log only rows every store accepted: a rejected malformed row
        # must fail its caller, never linger to poison a later failover
        # replay.
        self._ingest_log.append((values.copy(), float(timestamp_minutes)))
        # Invalidate every cached own_window materialisation.
        self._window_version += 1

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray) -> np.ndarray:
        with no_grad():
            assert_inference_mode(self.model)
            return self.model(Tensor(x)).data

    def stage(self, batch: int) -> np.ndarray:
        """A ``[batch, horizon, nodes, features]`` view of the persistent
        staging buffer; :meth:`predict` recognises it and skips its
        staging copy (same seam as :meth:`ModelSession.stage`)."""
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch {batch} outside [1, {self.max_batch}]")
        return self._in_buf[:batch]

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Fused forward over explicit full windows, sharded merge.

        The front door broadcasts the request batch to every shard (byte
        accounted); each shard computes the forward and contributes its
        owned rows to the merged ``[batch, horizon, nodes, 1]`` output.
        With an exact halo every shard sees identical input, so the merge
        is bitwise identical to unsharded inference.
        """
        self._ensure_healthy()
        windows = np.asarray(windows)
        if windows.ndim == 3:
            windows = windows[None]
        expected = (self.horizon, self.num_nodes, self.in_features)
        if windows.ndim != 4 or windows.shape[1:] != expected:
            raise ShapeError(f"expected [batch, {expected[0]}, {expected[1]}, "
                             f"{expected[2]}] windows, got {windows.shape}")
        b = windows.shape[0]
        if b > self.max_batch:
            raise ValueError(f"batch {b} exceeds max_batch {self.max_batch}")
        staged = self._in_buf[:b]
        if not (windows.base is self._in_buf
                and windows.ctypes.data == self._in_buf.ctypes.data):
            np.copyto(staged, windows, casting="same_kind")
        # Charge the request fan-out without materialising per-shard
        # copies (broadcast() would allocate world_size full batches just
        # to discard them; shards share memory in simulation anyway).
        for w in self.workers[1:]:
            self.comm.fetch(0, w.shard_id, staged.nbytes,
                            category="serve-request")
        out = np.empty((b, self.horizon, self.num_nodes, 1), np.float32)
        if (len(self.workers) == self.comm.world_size
                and getattr(self.comm.transport, "isolated_ranks", False)):
            # Process-isolated fabric with one rank per shard: forwards
            # run in real per-shard interpreters and each rank ships home
            # only its owned rows.  (After a repartition failover the
            # worker count can drop below the fixed world size; the
            # inline path below then keeps serving correct.)
            def shard_forward(rank: int) -> np.ndarray:
                w = self.workers[rank]
                return self._forward(staged)[:, :, w.owned]

            shard_rows = self.comm.run_ranks(shard_forward)
            for w, rows in zip(self.workers, shard_rows):
                out[:, :, w.owned] = rows
        else:
            for w in self.workers:
                shard_out = self._forward(staged)
                out[:, :, w.owned] = shard_out[:, :, w.owned]
        self.requests_served += b
        return out

    def _assemble_from_stores(self, w: ShardWorker) -> np.ndarray:
        """Build shard ``w``'s full input window: local columns + halo
        fetches from peer owners (byte-accounted), zero elsewhere."""
        if w.store is None:
            raise RuntimeError("no stores attached (session needs a scaler)")
        h = self.horizon
        w.assemble[:, w.owned] = self._fresh_own_window(w)
        itemsize = w.assemble.itemsize
        for peer in self.workers:
            if peer.shard_id == w.shard_id:
                continue
            cols = peer.owned[np.isin(peer.owned, w.halo, assume_unique=True)]
            if len(cols) == 0:
                continue
            # Zero-copy: the peer's shared window view, materialised by
            # its owner at most once per ingest version.
            peer_window = self._fresh_own_window(peer)
            local = np.searchsorted(peer.owned, cols)
            w.assemble[:, cols] = peer_window[:, local]
            self.comm.fetch(peer.shard_id, w.shard_id,
                            h * len(cols) * self.in_features * itemsize,
                            category="halo")
        return w.assemble

    def current_window(self) -> np.ndarray:
        """The full current input window assembled from every shard's
        *owned* columns (ownership covers all sensors, so no halo traffic
        is needed).  This is the front door's ``window=None``
        materialisation for the micro-batched path; :meth:`predict` then
        broadcasts it like any explicit window.

        Returns an owned copy (like :meth:`ModelSession.current_window`):
        callers may hold it across later ingests — a queued request must
        keep the snapshot it was submitted with."""
        self._ensure_healthy()
        out = self._window_buf
        for w in self.workers:
            if w.store is None:
                raise RuntimeError("sharded session built without a scaler "
                                   "has no stores to read")
            out[:, w.owned] = self._fresh_own_window(w)
        return out.copy()

    def forecast_current(self) -> np.ndarray:
        """Forecast every sensor from the shards' stores: each shard
        assembles its halo, forwards, and contributes its owned rows."""
        self._ensure_healthy()
        for w in self.workers:
            x = self._assemble_from_stores(w)
            shard_out = self._forward(x[None])[0]
            self._merged[:, w.owned] = shard_out[:, w.owned]
        self.requests_served += 1
        return self._merged

    def forecast_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Route a per-sensor request: only the owner shards of ``nodes``
        (plus their halo peers) do work.  Returns ``[horizon, len(nodes)]``
        standardized predictions in request order."""
        self._ensure_healthy()
        nodes = np.atleast_1d(np.asarray(nodes))
        out = np.empty((self.horizon, len(nodes)), np.float32)
        involved = np.unique(self.assignment[nodes])
        for s in involved:
            w = self.workers[int(s)]
            x = self._assemble_from_stores(w)
            shard_out = self._forward(x[None])[0]
            mask = self.assignment[nodes] == s
            out[:, mask] = shard_out[:, nodes[mask], 0]
        self.requests_served += 1
        return out

    def to_original_units(self, predictions: np.ndarray) -> np.ndarray:
        if self.scaler is None:
            raise RuntimeError("session has no scaler; predictions stay "
                               "in standardized units")
        return self.scaler.inverse_transform_channel(predictions[..., 0], 0)

    # ------------------------------------------------------------------
    def halo_stats(self) -> dict:
        """Traffic summary: per-shard halo sizes and total halo bytes."""
        return {
            "num_shards": self.num_shards,
            "halo_sizes": [int(len(w.halo)) for w in self.workers],
            "owned_sizes": [int(len(w.owned)) for w in self.workers],
            "store_dtype": np.dtype(self.store_dtype).name,
            "store_resident_bytes": sum(
                w.store.resident_nbytes for w in self.workers
                if w.store is not None),
            "window_pool_bytes": int(self._window_pool.shm.size),
            "bytes_by_category": dict(self.comm.stats.bytes_by_category),
            "ops": self.comm.stats.ops,
            "failovers": len(self.failover_events),
            "scale_events": len(self.scale_events),
            "standby_remaining": self.standby,
            "faults_dropped": list(self.faults_dropped),
        }
