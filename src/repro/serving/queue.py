"""Micro-batching request queue with deadline accounting.

Online inference throughput comes from coalescing concurrent requests
into one fused forward pass (the Clipper-style adaptive batching
argument): a batch of 8 windows costs far less than 8 single forwards
because the per-step Python/kernel overhead amortises.  The queue
coalesces up to ``max_batch`` requests, but never holds a request longer
than ``max_wait`` — the classic batching/latency trade-off, both knobs
explicit.

The queue is a pure, synchronous data structure driven by an injectable
``clock`` (the service passes a shared one): ``submit`` stamps arrivals,
``ready`` reports whether a batch should be dispatched *now*, and
``next_batch`` pops it.  No threads — the serving loop and the load
generator drive time explicitly, which keeps every schedule reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Wait-comparison tolerance (1 ns).  ``max_wait - oldest_wait`` can round
#: to a sub-ulp remainder once a clock is advanced *to* the fire time, which
#: would leave ``ready()`` false forever at an unreachable instant; one
#: nanosecond is far below any meaningful service latency.
_WAIT_EPS = 1e-9


@dataclass
class ForecastRequest:
    """One queued forecast request.

    ``window`` is the standardized model input ``[horizon, nodes,
    features]``; ``deadline`` (absolute clock time, optional) marks when
    the answer stops being useful — completion later than this counts as
    a deadline miss, not a drop.
    """

    request_id: int
    window: np.ndarray
    arrival: float
    deadline: float | None = None
    # Filled in by the service at dispatch/completion time.
    dispatched: float = field(default=float("nan"))
    completed: float = field(default=float("nan"))
    batch_size: int = 0

    @property
    def queue_wait(self) -> float:
        return self.dispatched - self.arrival

    @property
    def latency(self) -> float:
        return self.completed - self.arrival

    @property
    def deadline_missed(self) -> bool:
        return self.deadline is not None and self.completed > self.deadline


class MicroBatchQueue:
    """FIFO of :class:`ForecastRequest`\\ s with coalescing policy.

    A batch is ready when ``max_batch`` requests are pending, or when the
    oldest pending request has waited at least ``max_wait`` seconds.
    """

    def __init__(self, *, max_batch: int = 8, max_wait: float = 0.005,
                 clock: Callable[[], float] | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        import time
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.clock = clock if clock is not None else time.perf_counter
        self._pending: deque[ForecastRequest] = deque()
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, window: np.ndarray, *,
               deadline: float | None = None) -> ForecastRequest:
        """Enqueue one request, stamped with the current clock time."""
        req = ForecastRequest(request_id=self._next_id, window=window,
                              arrival=self.clock(), deadline=deadline)
        self._next_id += 1
        self._pending.append(req)
        return req

    def oldest_wait(self) -> float:
        """Seconds the head request has been pending (0 when empty)."""
        if not self._pending:
            return 0.0
        return self.clock() - self._pending[0].arrival

    def ready(self) -> bool:
        """Should a batch be dispatched now?"""
        if not self._pending:
            return False
        return (len(self._pending) >= self.max_batch
                or self.oldest_wait() >= self.max_wait - _WAIT_EPS)

    def time_until_ready(self) -> float | None:
        """Seconds until the coalescing timer fires for the head request:
        0 when a batch is ready now, ``None`` when the queue is empty.
        Event-driven callers (the load generator) advance their clock by
        this instead of busy-polling."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        remaining = self.max_wait - self.oldest_wait()
        return 0.0 if remaining <= _WAIT_EPS else remaining

    def next_batch(self, *, force: bool = False) -> list[ForecastRequest]:
        """Pop up to ``max_batch`` requests; empty unless ready (or forced).

        Dispatch times are stamped here; the caller stamps completion once
        the fused forward finishes.
        """
        if not force and not self.ready():
            return []
        now = self.clock()
        batch: list[ForecastRequest] = []
        while self._pending and len(batch) < self.max_batch:
            req = self._pending.popleft()
            req.dispatched = now
            batch.append(req)
        for req in batch:
            req.batch_size = len(batch)
        return batch
