"""Self-healing serving: health monitoring, circuit breakers, degradation.

PR 5 taught *training* to survive injected faults; this module does the
same for the gateway.  The pieces compose on the gateway's shared clock,
so every failure, trip, probe and recovery is exactly as reproducible as
the request schedule that caused it:

- :class:`DeploymentFaultInjector` consumes the serving-side events of a
  :class:`~repro.runtime.faults.FaultPlan` (``session_crash``,
  ``session_straggler``, ``store_corruption``) and fires them at a
  deployment's dispatch boundaries — chaos composes with
  :class:`~repro.serving.loadgen.GatewayLoadGenerator` traffic.
- :class:`HealthMonitor` tracks consecutive dispatch failures and an
  EWMA of per-batch service time against a baseline.
- :class:`CircuitBreaker` is the classic closed → open → half-open
  machine: it opens on a failure streak or an EWMA latency blowout,
  stays open for ``reset_timeout`` clock seconds, then admits exactly
  one probe; a healthy probe closes it, anything else re-opens it.
  Every transition is recorded as a :class:`CircuitTransition` (the
  chaos bench pins the full transition list bit-for-bit across reruns).
- :class:`ResiliencePolicy` bundles the knobs, including the graceful
  degradation ladder the gateway walks when a deployment is down:
  serve a stale-but-fingerprint-matching result-cache entry, fall back
  to a named fallback deployment, or fail explicitly — never hang,
  never drop silently.
- :class:`RollbackRecord` documents an automatic blue-green rollback:
  a swap whose green session fails its canary health checks is reverted
  to blue with zero dropped requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.errors import SessionFailure

#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the gateway's self-healing behaviour.

    Parameters
    ----------
    failure_threshold:
        consecutive failed dispatches that open a deployment's circuit.
    latency_blowout:
        the circuit also opens when the EWMA batch service time exceeds
        ``latency_blowout`` x the deployment's baseline estimate.
    latency_alpha:
        EWMA smoothing for the health monitor's latency track.
    reset_timeout:
        clock seconds an open circuit waits before admitting a probe.
    max_retries:
        failed-dispatch retries per request (each re-enters admission
        control with the request's *remaining* deadline budget, so
        retries are charged honestly and overload still sheds).
    serve_stale:
        degrade to expired-but-integrity-verified result-cache entries
        when a deployment is unavailable (the cache key embeds the
        window fingerprint, so a stale answer always matches the exact
        request it degrades).
    hedge:
        when a healthy-but-slow deployment's EWMA exceeds
        ``hedge_latency_factor`` x baseline, duplicate the request to the
        fallback deployment if the deadline budget affords both; the
        first completion wins, the loser is discarded.
    canary_probes:
        health-check forecasts run against a freshly swapped green
        session; any :class:`~repro.utils.errors.SessionFailure` or
        non-finite prediction auto-rolls the swap back to blue.
    """

    failure_threshold: int = 2
    latency_blowout: float = 4.0
    latency_alpha: float = 0.3
    reset_timeout: float = 0.05
    max_retries: int = 1
    serve_stale: bool = True
    hedge: bool = False
    hedge_latency_factor: float = 2.0
    canary_probes: int = 2

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {self.failure_threshold}")
        if self.latency_blowout <= 1.0:
            raise ValueError(f"latency_blowout must exceed 1.0, "
                             f"got {self.latency_blowout}")
        if not 0.0 < self.latency_alpha <= 1.0:
            raise ValueError(f"latency_alpha must be in (0, 1], "
                             f"got {self.latency_alpha}")
        if self.reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be positive, "
                             f"got {self.reset_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")
        if self.hedge_latency_factor <= 1.0:
            raise ValueError(f"hedge_latency_factor must exceed 1.0, "
                             f"got {self.hedge_latency_factor}")
        if self.canary_probes < 0:
            raise ValueError(f"canary_probes must be >= 0, "
                             f"got {self.canary_probes}")


@dataclass(frozen=True)
class CircuitTransition:
    """One circuit-breaker state change, recorded for determinism pins."""

    deployment: str
    frm: str
    to: str
    at: float                   # gateway-clock time of the transition
    reason: str                 # "failures" | "latency" | "timeout" |
    #                             "probe_ok" | "probe_failed"

    def to_dict(self) -> dict:
        return {"deployment": self.deployment, "from": self.frm,
                "to": self.to, "at": float(self.at), "reason": self.reason}


@dataclass(frozen=True)
class RollbackRecord:
    """One automatic blue-green rollback (green failed its canary)."""

    deployment: str
    failed_version: str         # the green version that never went live
    restored_version: str       # blue, serving again
    reason: str                 # "session_failure" | "non_finite"
    probes_run: int
    dropped: int                # must be 0: canaries are synthetic
    at: float

    def to_dict(self) -> dict:
        return dict(deployment=self.deployment,
                    failed_version=self.failed_version,
                    restored_version=self.restored_version,
                    reason=self.reason, probes_run=self.probes_run,
                    dropped=self.dropped, at=float(self.at))


class HealthMonitor:
    """Failure streaks + EWMA service latency for one deployment.

    ``baseline`` anchors the latency-blowout test; it is seeded from the
    admission controller's synthetic service-time estimate when one
    exists, otherwise from the first observation.
    """

    def __init__(self, *, alpha: float = 0.3,
                 baseline: float | None = None):
        self.alpha = float(alpha)
        self.baseline = None if baseline is None else float(baseline)
        self.ewma_latency: float | None = None
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0

    def observe_latency(self, seconds: float) -> None:
        # The baseline is only ever seeded explicitly (from a synthetic
        # service-time model): measured wall latencies are too noisy to
        # anchor a blowout test, so unseeded monitors never trip on
        # latency — only on failure streaks.
        seconds = float(seconds)
        if self.ewma_latency is None:
            self.ewma_latency = seconds
        else:
            a = self.alpha
            self.ewma_latency = (1.0 - a) * self.ewma_latency + a * seconds

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1

    def latency_blown(self, factor: float,
                      seconds: float | None = None) -> bool:
        """Whether ``seconds`` (default: the EWMA) exceeds ``factor`` x
        baseline.  False until a baseline exists — never trips blind."""
        if self.baseline is None or self.baseline <= 0:
            return False
        value = self.ewma_latency if seconds is None else float(seconds)
        return value is not None and value > factor * self.baseline

    def reset(self, latency: float | None = None) -> None:
        """Fresh slate after a recovery (keeps the baseline)."""
        self.consecutive_failures = 0
        self.ewma_latency = None if latency is None else float(latency)


class CircuitBreaker:
    """Closed → open → half-open breaker for one deployment.

    All timing runs on the gateway clock, and probes are scheduled
    deterministically: an open circuit flips to half-open on the first
    request at least ``reset_timeout`` after it opened, and half-open
    admits exactly one in-flight probe at a time.
    """

    def __init__(self, deployment: str, policy: ResiliencePolicy,
                 clock: Callable[[], float], *,
                 baseline: float | None = None):
        self.deployment = str(deployment)
        self.policy = policy
        self.clock = clock
        self.monitor = HealthMonitor(alpha=policy.latency_alpha,
                                     baseline=baseline)
        self.state = CLOSED
        self.opened_at: float | None = None
        self.probe_in_flight = False
        self.transitions: list[CircuitTransition] = []

    # ------------------------------------------------------------------
    def _move(self, to: str, reason: str, at: float) -> None:
        self.transitions.append(CircuitTransition(
            deployment=self.deployment, frm=self.state, to=to,
            at=at, reason=reason))
        self.state = to
        self.opened_at = at if to == OPEN else None
        if to != HALF_OPEN:
            self.probe_in_flight = False

    # ------------------------------------------------------------------
    def before_request(self, now: float | None = None) -> str:
        """The effective state for a request arriving now (applies the
        open -> half-open timeout transition)."""
        now = self.clock() if now is None else now
        if (self.state == OPEN
                and now - self.opened_at >= self.policy.reset_timeout):
            self._move(HALF_OPEN, "timeout", now)
        return self.state

    def try_probe(self) -> bool:
        """Claim the half-open circuit's single probe slot."""
        if self.state != HALF_OPEN or self.probe_in_flight:
            return False
        self.probe_in_flight = True
        return True

    def cancel_probe(self) -> None:
        """Release the probe slot (the probe was shed before dispatch)."""
        self.probe_in_flight = False

    # ------------------------------------------------------------------
    def record_success(self, batch_seconds: float | None = None,
                       now: float | None = None) -> None:
        """A dispatch completed; in half-open this resolves the probe.

        A probe only closes the circuit when its own latency is within
        the blowout bound — a straggling deployment keeps its circuit
        open (re-probed each ``reset_timeout``) until it actually
        recovers.
        """
        now = self.clock() if now is None else now
        if self.state == HALF_OPEN:
            if batch_seconds is not None and self.monitor.latency_blown(
                    self.policy.latency_blowout, batch_seconds):
                self._move(OPEN, "latency", now)
                return
            self.monitor.reset(latency=batch_seconds)
            self.monitor.record_success()
            self._move(CLOSED, "probe_ok", now)
            return
        self.monitor.record_success()
        if batch_seconds is not None:
            self.monitor.observe_latency(batch_seconds)
        if (self.state == CLOSED
                and self.monitor.latency_blown(self.policy.latency_blowout)):
            self._move(OPEN, "latency", now)

    def record_failure(self, now: float | None = None) -> None:
        """A dispatch failed; may open the circuit."""
        now = self.clock() if now is None else now
        self.monitor.record_failure()
        if self.state == HALF_OPEN:
            self._move(OPEN, "probe_failed", now)
        elif (self.state == CLOSED
              and self.monitor.consecutive_failures
              >= self.policy.failure_threshold):
            self._move(OPEN, "failures", now)

    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        """Healthy but slow: EWMA past the hedge threshold (the hedging
        trigger, below the blowout that would open the circuit)."""
        return (self.state == CLOSED
                and self.monitor.latency_blown(
                    self.policy.hedge_latency_factor))

    def describe(self) -> dict:
        return {"state": self.state,
                "transitions": len(self.transitions),
                "consecutive_failures": self.monitor.consecutive_failures,
                "failures": self.monitor.failures,
                "successes": self.monitor.successes,
                "ewma_latency": self.monitor.ewma_latency,
                "baseline_latency": self.monitor.baseline,
                "probe_in_flight": self.probe_in_flight}


class DeploymentFaultInjector:
    """Fires a :class:`~repro.runtime.faults.FaultPlan`'s gateway events
    at one deployment's dispatch boundaries.

    Attached to the deployment's :class:`~repro.serving.service.
    ForecastService`, which calls :meth:`on_dispatch` before every batch
    forward and :meth:`scale_service_time` on every charge.  ``fired``
    mirrors :class:`~repro.runtime.faults.FaultyTransport.fired`: each
    one-shot event triggers exactly once, so restarts do not refire a
    crash that already happened.
    """

    def __init__(self, deployment: str, plan):
        self.deployment = str(deployment)
        self.plan = plan
        self._events = tuple(plan.gateway_events(self.deployment))
        self.fired: set[int] = set()
        self.dispatches = 0
        self.inserts = 0
        self.dead = False
        self.crashes = 0
        self.corruptions = 0

    # ------------------------------------------------------------------
    def on_dispatch(self, batch_size: int) -> None:
        """Called before a batch forward; raises
        :class:`~repro.utils.errors.SessionFailure` while the session is
        down (a fired ``session_crash`` keeps it down until the
        deployment restarts)."""
        ordinal = self.dispatches
        self.dispatches += 1
        for i, ev in self._events:
            if (ev.kind == "session_crash" and i not in self.fired
                    and ordinal >= ev.request):
                self.fired.add(i)
                self.dead = True
                self.crashes += 1
        if self.dead:
            raise SessionFailure(
                f"deployment {self.deployment!r} session is down "
                f"(dispatch {ordinal})")

    def scale_service_time(self, seconds: float) -> float:
        """Stretch the current dispatch's service charge through any
        active ``session_straggler`` range (dispatch ordinals)."""
        ordinal = self.dispatches - 1
        for _, ev in self._events:
            if ev.kind == "session_straggler" and ev.active_at(ordinal):
                seconds *= ev.slowdown
        return seconds

    def revive(self) -> None:
        """The deployment restarted its session; fail-fast mode ends."""
        self.dead = False

    # ------------------------------------------------------------------
    def maybe_corrupt(self, cache, key: tuple) -> bool:
        """Called after each result-cache insertion for this deployment;
        fires due ``store_corruption`` events by flipping bytes in the
        just-stored entry.  Returns whether a corruption fired."""
        ordinal = self.inserts
        self.inserts += 1
        hit = False
        for i, ev in self._events:
            if (ev.kind == "store_corruption" and i not in self.fired
                    and ordinal >= ev.request):
                self.fired.add(i)
                cache.corrupt(key)
                self.corruptions += 1
                hit = True
        return hit

    def describe(self) -> dict:
        return {"events": len(self._events), "fired": sorted(self.fired),
                "dispatches": self.dispatches, "dead": self.dead,
                "crashes": self.crashes, "corruptions": self.corruptions}


class GatewayResilience:
    """Per-gateway resilience state: breakers, injectors, rollbacks.

    The gateway owns one of these when built with a ``fault_plan``
    and/or a :class:`ResiliencePolicy`; deployments register lazily.
    """

    def __init__(self, policy: ResiliencePolicy,
                 clock: Callable[[], float], *, fault_plan=None):
        self.policy = policy
        self.clock = clock
        self.fault_plan = fault_plan
        self.breakers: dict[str, CircuitBreaker] = {}
        self.injectors: dict[str, DeploymentFaultInjector] = {}
        self.rollbacks: list[RollbackRecord] = []
        self.retries = 0
        self.hedges = 0
        self.hedges_wasted = 0
        self.degraded_stale = 0
        self.degraded_fallback = 0
        self.failed = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    def register(self, deployment: str,
                 baseline: float | None = None) -> None:
        """Create the deployment's breaker (and injector, when the fault
        plan schedules events for it)."""
        deployment = str(deployment)
        if deployment not in self.breakers:
            self.breakers[deployment] = CircuitBreaker(
                deployment, self.policy, self.clock, baseline=baseline)
        elif baseline is not None:
            monitor = self.breakers[deployment].monitor
            if monitor.baseline is None:
                monitor.baseline = float(baseline)
        if (self.fault_plan is not None and deployment not in self.injectors
                and self.fault_plan.gateway_events(deployment)):
            self.injectors[deployment] = DeploymentFaultInjector(
                deployment, self.fault_plan)

    def breaker(self, deployment: str) -> CircuitBreaker:
        deployment = str(deployment)
        if deployment not in self.breakers:
            self.register(deployment)
        return self.breakers[deployment]

    def injector(self, deployment: str) -> DeploymentFaultInjector | None:
        return self.injectors.get(str(deployment))

    # ------------------------------------------------------------------
    def transitions(self, deployment: str | None = None) -> list[dict]:
        """All recorded circuit transitions (one deployment's, or every
        deployment's merged in time order) as plain dicts — the chaos
        bench's determinism pin."""
        if deployment is not None:
            return [t.to_dict()
                    for t in self.breaker(deployment).transitions]
        merged = [t for b in self.breakers.values() for t in b.transitions]
        merged.sort(key=lambda t: (t.at, t.deployment))
        return [t.to_dict() for t in merged]

    def describe(self) -> dict:
        return {
            "policy": {"failure_threshold": self.policy.failure_threshold,
                       "latency_blowout": self.policy.latency_blowout,
                       "reset_timeout": self.policy.reset_timeout,
                       "max_retries": self.policy.max_retries,
                       "serve_stale": self.policy.serve_stale,
                       "hedge": self.policy.hedge},
            "breakers": {n: b.describe()
                         for n, b in sorted(self.breakers.items())},
            "injectors": {n: i.describe()
                          for n, i in sorted(self.injectors.items())},
            "retries": self.retries,
            "hedges": self.hedges,
            "hedges_wasted": self.hedges_wasted,
            "degraded_stale": self.degraded_stale,
            "degraded_fallback": self.degraded_fallback,
            "failed": self.failed,
            "restarts": self.restarts,
            "rollbacks": [r.to_dict() for r in self.rollbacks],
        }
