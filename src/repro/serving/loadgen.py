"""Reproducible load generation against a :class:`ForecastService`.

Two canonical harnesses from the serving-systems literature:

- **closed loop** — ``concurrency`` clients, each submitting its next
  request the moment (plus ``think_time``) its previous one completes.
  Measures sustainable throughput: offered load adapts to the service.
- **open loop** — requests arrive on a fixed schedule (Poisson or
  uniform) at ``rate_qps`` regardless of completions.  Measures latency
  under a given offered load, including queueing collapse past capacity.

The generator is event-driven over the service's
:class:`~repro.serving.service.ManualClock`: it advances simulated time
to each arrival and to each coalescing-timer expiry, so the schedule of
batches is an exact function of (seed, knobs, service times).  With the
service's default *measured* service times, latency percentiles are
honest wall-clock numbers; with a synthetic ``service_time`` model the
entire run — every latency, every batch size — is bit-reproducible,
which the determinism test exploits.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serving.service import Forecast, ForecastService, ManualClock
from repro.utils.errors import ShapeError


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run.

    Gateway runs (see :class:`GatewayLoadGenerator`) additionally fill
    ``goodput_qps`` (successfully answered requests — computed or cached
    — per second), ``shed_rate`` (admission-shed fraction of submitted
    requests) and ``per_tenant`` (one breakdown dict per tenant); plain
    service runs leave them ``None``.
    """

    scenario: str
    mode: str                    # "closed" | "open"
    requests: int
    duration_seconds: float      # simulated clock span of the run
    qps: float                   # completed requests / duration
    offered_qps: float | None    # open loop only: the arrival rate
    latency_p50: float           # seconds, on the service clock
    latency_p95: float
    latency_p99: float
    latency_mean: float
    latency_max: float
    queue_wait_mean: float
    mean_batch_size: float
    batches: int
    deadline_misses: int
    utilization: float           # model-busy seconds / duration
    seed: int
    failovers: int = 0           # shard failovers observed during the run
    failover_p99: float = 0.0    # p99 failover rebuild latency (wall s)
    goodput_qps: float | None = None   # gateway: good answers / duration
    shed_rate: float | None = None     # gateway: shed / submitted
    per_tenant: dict | None = None     # gateway: tenant -> breakdown
    degraded: int = 0                  # gateway: stale/fallback answers
    failed: int = 0                    # gateway: degradation exhausted

    def to_dict(self) -> dict:
        return {k: (v if not isinstance(v, float) else float(v))
                for k, v in self.__dict__.items()}

    def summary(self) -> str:
        offered = (f" (offered {self.offered_qps:.0f} qps)"
                   if self.offered_qps else "")
        text = (f"{self.scenario}: {self.requests} reqs in "
                f"{self.duration_seconds * 1e3:.1f} ms -> "
                f"{self.qps:.0f} qps{offered}, latency p50/p95/p99 "
                f"{self.latency_p50 * 1e3:.2f}/{self.latency_p95 * 1e3:.2f}/"
                f"{self.latency_p99 * 1e3:.2f} ms, mean batch "
                f"{self.mean_batch_size:.1f}, misses {self.deadline_misses}")
        if self.goodput_qps is not None:
            text += (f", goodput {self.goodput_qps:.0f} qps, shed "
                     f"{self.shed_rate:.1%}")
        return text


class LoadGenerator:
    """Drives a :class:`ForecastService` with a seeded request stream.

    Parameters
    ----------
    service:
        the service under test; must run on a
        :class:`~repro.serving.service.ManualClock` (the generator owns
        time).
    windows:
        ``[pool, horizon, nodes, features]`` standardized input windows;
        each request samples one uniformly (seeded).
    seed:
        RNG seed for window choice and arrival schedules.
    """

    def __init__(self, service: ForecastService, windows: np.ndarray, *,
                 seed: int = 0):
        if not isinstance(service.clock, ManualClock):
            raise TypeError("LoadGenerator needs a service on a ManualClock; "
                            "it drives simulated time explicitly")
        windows = np.asarray(windows)
        if windows.ndim != 4 or len(windows) == 0:
            raise ShapeError(f"windows pool must be non-empty "
                             f"[pool, horizon, nodes, features], "
                             f"got {windows.shape}")
        self.service = service
        self.clock: ManualClock = service.clock
        self.windows = windows
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _pick_window(self) -> np.ndarray:
        return self.windows[int(self.rng.integers(len(self.windows)))]

    def _fire_timers_until(self, t: float, sink: list[Forecast]) -> None:
        """Advance through every coalescing-timer expiry before time ``t``."""
        while True:
            remaining = self.service.queue.time_until_ready()
            if remaining is None:
                return
            fire_at = self.clock.now + remaining
            if fire_at > t:
                return
            self.clock.advance_to(fire_at)
            sink.extend(self.service.poll())

    def _drain(self, sink: list[Forecast]) -> None:
        """Run out the queue through its natural timers (no force-flush,
        so tail requests keep honest coalescing-delay latencies)."""
        while len(self.service.queue):
            remaining = self.service.queue.time_until_ready()
            self.clock.advance_to(self.clock.now + (remaining or 0.0))
            sink.extend(self.service.poll())

    def _failover_mark(self) -> int:
        """How many failovers the service has logged so far (0 for
        sessions without a failover path, e.g. ``ModelSession``)."""
        return len(self.service.failover_events)

    def _report(self, scenario: str, mode: str, done: list[Forecast],
                start: float, offered_qps: float | None,
                busy_before: float, batches_before: int,
                failovers_before: int = 0) -> LoadReport:
        duration = self.clock.now - start
        failover_secs = np.array(
            [ev.seconds for ev in
             self.service.failover_events[failovers_before:]],
            dtype=np.float64)
        lat = np.array([fc.latency for fc in done], dtype=np.float64)
        waits = np.array([fc.queue_wait for fc in done], dtype=np.float64)
        sizes = np.array([fc.batch_size for fc in done], dtype=np.float64)
        p50, p95, p99 = (np.percentile(lat, [50, 95, 99])
                         if len(lat) else (np.nan,) * 3)
        batches = self.service.stats.batches - batches_before
        busy = self.service.stats.busy_seconds - busy_before
        return LoadReport(
            scenario=scenario, mode=mode, requests=len(done),
            duration_seconds=duration,
            qps=len(done) / duration if duration > 0 else float("inf"),
            offered_qps=offered_qps,
            latency_p50=float(p50), latency_p95=float(p95),
            latency_p99=float(p99),
            latency_mean=float(lat.mean()) if len(lat) else float("nan"),
            latency_max=float(lat.max()) if len(lat) else float("nan"),
            queue_wait_mean=float(waits.mean()) if len(waits) else float("nan"),
            mean_batch_size=float(sizes.mean()) if len(sizes) else 0.0,
            batches=batches,
            deadline_misses=sum(fc.deadline_missed for fc in done),
            utilization=busy / duration if duration > 0 else 0.0,
            seed=self.seed,
            failovers=len(failover_secs),
            failover_p99=(float(np.percentile(failover_secs, 99))
                          if len(failover_secs) else 0.0))

    # ------------------------------------------------------------------
    def closed_loop(self, *, requests: int, concurrency: int = 8,
                    think_time: float = 0.0, deadline: float | None = None,
                    scenario: str = "closed") -> LoadReport:
        """``concurrency`` clients in lock-step with their completions."""
        if requests < 1 or concurrency < 1:
            raise ValueError("requests and concurrency must be >= 1")
        svc = self.service
        start = self.clock.now
        busy0, batches0 = svc.stats.busy_seconds, svc.stats.batches
        failover0 = self._failover_mark()
        # (time, tiebreak, client) submission events.  The main loop always
        # processes the earlier of {next submission, coalescing timer}, so
        # simulated time advances monotonically through both.
        scheduled = min(concurrency, requests)
        events: list[tuple[float, int, int]] = [
            (start, c, c) for c in range(scheduled)]
        heapq.heapify(events)
        owner: dict[int, int] = {}
        seq = scheduled
        done: list[Forecast] = []

        def collect() -> None:
            """Record completions; each frees its client to resubmit."""
            nonlocal seq, scheduled
            for fc in svc.poll():
                done.append(fc)
                if scheduled < requests:
                    heapq.heappush(events, (self.clock.now + think_time, seq,
                                            owner[fc.request_id]))
                    seq += 1
                    scheduled += 1

        while len(done) < requests:
            remaining = svc.queue.time_until_ready()
            timer_at = None if remaining is None else self.clock.now + remaining
            if events and (timer_at is None or events[0][0] <= timer_at):
                t, _, client = heapq.heappop(events)
                self.clock.advance_to(t)
                rid = svc.submit(self._pick_window(),
                                 deadline=None if deadline is None
                                 else self.clock.now + deadline)
                owner[rid] = client
                collect()
            elif timer_at is not None:
                self.clock.advance_to(timer_at)
                collect()
            else:                                  # pragma: no cover
                raise RuntimeError("closed loop stalled: no events, no queue")
        return self._report(scenario, "closed", done, start, None,
                            busy0, batches0, failover0)

    # ------------------------------------------------------------------
    def open_loop(self, *, requests: int, rate_qps: float,
                  arrival: str = "poisson", deadline: float | None = None,
                  scenario: str = "open") -> LoadReport:
        """Fixed-rate arrivals, independent of completions."""
        if requests < 1:
            raise ValueError("requests must be >= 1")
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if arrival == "poisson":
            gaps = self.rng.exponential(1.0 / rate_qps, size=requests)
        elif arrival == "uniform":
            gaps = np.full(requests, 1.0 / rate_qps)
        else:
            raise ValueError(f"arrival must be 'poisson' or 'uniform', "
                             f"got {arrival!r}")
        svc = self.service
        start = self.clock.now
        busy0, batches0 = svc.stats.busy_seconds, svc.stats.batches
        failover0 = self._failover_mark()
        arrivals = start + np.cumsum(gaps)
        done: list[Forecast] = []
        for t in arrivals:
            self._fire_timers_until(float(t), done)
            self.clock.advance_to(float(t))
            svc.submit(self._pick_window(),
                       deadline=None if deadline is None
                       else self.clock.now + deadline)
            done.extend(svc.poll())
        self._drain(done)
        return self._report(scenario, "open", done, start, float(rate_qps),
                            busy0, batches0, failover0)


# ---------------------------------------------------------------------------
# Gateway traffic: per-tenant open-loop streams with goodput/shed reporting
# ---------------------------------------------------------------------------
@dataclass
class TenantStream:
    """One tenant's open-loop arrival stream against one deployment.

    ``rate_qps`` is the stream's offered rate; ``deadline`` (relative
    seconds, optional) is stamped on every request and drives admission
    control's shed decisions.
    """

    api_key: str
    deployment: str
    rate_qps: float
    requests: int
    arrival: str = "poisson"        # "poisson" | "uniform"
    deadline: float | None = None

    def __post_init__(self):
        if self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, "
                             f"got {self.rate_qps}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.arrival not in ("poisson", "uniform"):
            raise ValueError(f"arrival must be 'poisson' or 'uniform', "
                             f"got {self.arrival!r}")


class GatewayLoadGenerator:
    """Drives a :class:`~repro.serving.gateway.Gateway` with per-tenant
    open-loop streams, reporting goodput, shed rate and per-tenant
    breakdowns on top of the usual latency percentiles.

    The generator owns simulated time exactly like :class:`LoadGenerator`
    (the gateway must run on a :class:`ManualClock`): per-stream arrival
    schedules are seeded, merged into one global timeline, and processed
    event-by-event against every deployment's coalescing timer — so with
    synthetic service-time models the entire multi-tenant run is
    bit-reproducible, shed decisions included.
    """

    def __init__(self, gateway: Any, windows: np.ndarray, *, seed: int = 0):
        if not isinstance(gateway.clock, ManualClock):
            raise TypeError("GatewayLoadGenerator needs a gateway on a "
                            "ManualClock; it drives simulated time "
                            "explicitly")
        windows = np.asarray(windows)
        if windows.ndim != 4 or len(windows) == 0:
            raise ShapeError(f"windows pool must be non-empty "
                             f"[pool, horizon, nodes, features], "
                             f"got {windows.shape}")
        self.gateway = gateway
        self.clock: ManualClock = gateway.clock
        self.windows = windows
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _pick_window(self) -> np.ndarray:
        return self.windows[int(self.rng.integers(len(self.windows)))]

    def _merged_arrivals(self, streams: list[TenantStream],
                         start: float) -> list[tuple[float, int, int]]:
        """All streams' arrival times merged into one sorted timeline.

        Returns ``(time, tiebreak, stream_index)`` triples; the tiebreak
        keeps simultaneous arrivals in a deterministic order.  RNG draws
        happen per stream in stream order, so the schedule is a pure
        function of (seed, streams).
        """
        events: list[tuple[float, int, int]] = []
        seq = 0
        for i, stream in enumerate(streams):
            if stream.arrival == "poisson":
                gaps = self.rng.exponential(1.0 / stream.rate_qps,
                                            size=stream.requests)
            else:
                gaps = np.full(stream.requests, 1.0 / stream.rate_qps)
            for t in start + np.cumsum(gaps):
                events.append((float(t), seq, i))
                seq += 1
        events.sort()
        return events

    def _fire_timers_until(self, t: float,
                           sink: list[Any]) -> None:
        """Advance through every deployment's coalescing-timer expiry
        before time ``t``, collecting completions as they happen."""
        while True:
            remaining = self.gateway.time_until_ready()
            if remaining is None:
                return
            fire_at = self.clock.now + remaining
            if fire_at > t:
                return
            self.clock.advance_to(fire_at)
            sink.extend(self.gateway.poll())

    def _drain(self, sink: list[Any]) -> None:
        while True:
            remaining = self.gateway.time_until_ready()
            if remaining is None:
                return
            self.clock.advance_to(self.clock.now + remaining)
            sink.extend(self.gateway.poll())

    # ------------------------------------------------------------------
    def open_loop(self, streams: list[TenantStream], *,
                  scenario: str = "gateway-open") -> LoadReport:
        """Run every stream's arrivals on one merged timeline."""
        if not streams:
            raise ValueError("need at least one TenantStream")
        gw = self.gateway
        start = self.clock.now
        deps = gw.deployments.deployments()
        busy0 = sum(d.service.stats.busy_seconds for d in deps
                    if d.service is not None)
        batches0 = sum(d.service.stats.batches for d in deps
                       if d.service is not None)
        responses: list[Any] = []
        for t, _, i in self._merged_arrivals(streams, start):
            stream = streams[i]
            self._fire_timers_until(t, responses)
            self.clock.advance_to(t)
            # Deadlines anchor at the *scheduled* arrival, not the (possibly
            # later) clock: past capacity the service's dispatches push
            # simulated time ahead of the arrival schedule, so late requests
            # arrive with part of their budget already spent — which is what
            # makes admission control shed under genuine overload.
            deadline = (None if stream.deadline is None
                        else t + stream.deadline)
            resp = gw.submit(stream.api_key, stream.deployment,
                             self._pick_window(), deadline=deadline)
            if resp.status != "admitted":
                responses.append(resp)
            responses.extend(gw.poll())
        self._drain(responses)
        responses.extend(gw.flush())    # safety: nothing may stay queued
        return self._report(scenario, streams, responses, start,
                            busy0, batches0)

    # ------------------------------------------------------------------
    def _report(self, scenario: str, streams: list[TenantStream],
                responses: list[Any], start: float, busy0: float,
                batches0: int) -> LoadReport:
        duration = self.clock.now - start
        deps = self.gateway.deployments.deployments()
        busy = sum(d.service.stats.busy_seconds for d in deps
                   if d.service is not None) - busy0
        batches = sum(d.service.stats.batches for d in deps
                      if d.service is not None) - batches0
        good = [r for r in responses if r.ok]
        shed = [r for r in responses if r.status == "shed"]
        degraded = [r for r in responses if r.status == "degraded"]
        failed = [r for r in responses if r.status == "failed"]
        computed = [r for r in good if not r.cached]
        lat = np.array([r.latency for r in good], dtype=np.float64)
        waits = np.array([r.forecast.queue_wait for r in computed],
                         dtype=np.float64)
        sizes = np.array([r.forecast.batch_size for r in computed],
                         dtype=np.float64)
        p50, p95, p99 = (np.percentile(lat, [50, 95, 99])
                         if len(lat) else (np.nan,) * 3)
        submitted = len(responses)
        offered = float(sum(s.rate_qps for s in streams))

        per_tenant: dict[str, dict] = {}
        for r in responses:
            t = per_tenant.setdefault(r.tenant, {
                "requests": 0, "completed": 0, "cache_hits": 0,
                "shed": 0, "quota_rejected": 0, "deadline_misses": 0,
                "degraded": 0, "failed": 0, "latencies": []})
            t["requests"] += 1
            if r.ok:
                t["completed"] += 1
                t["latencies"].append(r.latency)
                t["cache_hits"] += int(r.cached)
                t["degraded"] += int(r.status == "degraded")
                if r.forecast is not None and not r.cached:
                    t["deadline_misses"] += int(r.forecast.deadline_missed)
            elif r.status == "shed":
                t["shed"] += 1
            elif r.status == "rejected_quota":
                t["quota_rejected"] += 1
            elif r.status == "failed":
                t["failed"] += 1
        for t in per_tenant.values():
            lats = np.array(t.pop("latencies"), dtype=np.float64)
            t["goodput_qps"] = (t["completed"] / duration
                                if duration > 0 else 0.0)
            t["shed_rate"] = (t["shed"] / t["requests"]
                              if t["requests"] else 0.0)
            t["latency_p99"] = (float(np.percentile(lats, 99))
                                if len(lats) else float("nan"))

        return LoadReport(
            scenario=scenario, mode="open", requests=submitted,
            duration_seconds=duration,
            qps=len(good) / duration if duration > 0 else float("inf"),
            offered_qps=offered,
            latency_p50=float(p50), latency_p95=float(p95),
            latency_p99=float(p99),
            latency_mean=float(lat.mean()) if len(lat) else float("nan"),
            latency_max=float(lat.max()) if len(lat) else float("nan"),
            queue_wait_mean=float(waits.mean()) if len(waits) else float("nan"),
            mean_batch_size=float(sizes.mean()) if len(sizes) else 0.0,
            batches=batches,
            deadline_misses=sum(
                r.forecast.deadline_missed for r in computed),
            utilization=busy / duration if duration > 0 else 0.0,
            seed=self.seed,
            goodput_qps=len(good) / duration if duration > 0 else 0.0,
            shed_rate=len(shed) / submitted if submitted else 0.0,
            per_tenant=per_tenant,
            degraded=len(degraded), failed=len(failed))
