"""The inference session: a restored model behind preallocated buffers.

A :class:`ModelSession` is the serving-side counterpart of the
:class:`~repro.training.trainer.Trainer`: it owns a trained model locked
into eval mode, the scaler that standardized its training data, and one
persistent input-staging buffer, and answers ``predict`` calls under
``no_grad`` with zero per-request staging allocation (the forward pass
itself runs through the fused PR-2 kernels, which pool their interior
buffers).

Sessions are built either from live training artifacts or — the online
path — from a **self-describing checkpoint** written by
``save_checkpoint(..., spec=..., scaler=...)``: the embedded
:class:`~repro.api.spec.RunSpec` names the dataset/model/scale registry
keys, which deterministically reconstruct the sensor graph and model
skeleton before the parameters are restored.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import assert_inference_mode
from repro.preprocessing.scaler import StandardScaler
from repro.serving.cache import FeatureStore
from repro.utils.errors import ShapeError


class ModelSession:
    """A trained model prepared for online inference.

    Parameters
    ----------
    model:
        a trained :class:`~repro.models.base.STModel`; switched to eval
        mode here and expected to stay there (``predict`` asserts it).
    scaler:
        the scaler fitted on the training split; used to interpret
        standardized windows and invert predictions to original units.
    spec:
        optional :class:`~repro.api.spec.RunSpec` this model came from
        (kept for introspection / re-serialisation).
    max_batch:
        capacity of the persistent input-staging buffer; also the largest
        batch :meth:`predict` accepts.
    """

    def __init__(self, model: Any, scaler: StandardScaler | None = None, *,
                 spec: Any = None, max_batch: int = 32):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.model = model.eval()
        self.scaler = scaler
        self.spec = spec
        self.max_batch = int(max_batch)
        self.horizon = int(model.horizon)
        self.num_nodes = int(model.num_nodes)
        self.in_features = int(model.in_features)
        self.store: FeatureStore | None = None
        self._in_buf = np.empty(
            (self.max_batch, self.horizon, self.num_nodes, self.in_features),
            dtype=np.float32)
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Construction from a self-describing checkpoint
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path: str, *, max_batch: int = 32,
                        with_store: bool = True,
                        store_capacity: int | None = None,
                        store_dtype="float32") -> "ModelSession":
        """Restore model + scaler + spec from ``path`` and build a session.

        The checkpoint must have been written with ``spec=`` (and, for
        ``with_store``/original-unit forecasts, ``scaler=``).  The model
        skeleton is rebuilt through the ``repro.api`` registries from the
        embedded spec — dataset generation is deterministic in the spec's
        seed, so the sensor graph (and therefore the diffusion supports)
        match the training run exactly.

        ``store_dtype`` sets the feature-store ring precision:
        ``"float16"`` halves the store's resident footprint while windows
        still materialise into the session's float32 staging buffers
        (storage precision only — model math is unchanged).
        """
        # Imported lazily: repro.api imports this module's package.
        from repro.api.serving import restore_checkpoint
        from repro.kernels.precision import resolve_store_dtype

        model, scaler, spec, ds = restore_checkpoint(path)
        session = cls(model, scaler, spec=spec, max_batch=max_batch)
        if with_store and scaler is not None:
            session.attach_store(FeatureStore.for_dataset(
                ds, scaler, capacity=store_capacity or 4 * session.horizon,
                dtype=resolve_store_dtype(store_dtype) or np.float32))
        return session

    # ------------------------------------------------------------------
    # Streaming observations
    # ------------------------------------------------------------------
    def attach_store(self, store: FeatureStore) -> "ModelSession":
        """Attach the sliding-window feature store backing ``ingest``."""
        if store.num_nodes != self.num_nodes or \
                store.num_features != self.in_features:
            raise ShapeError(
                f"store shape [{store.num_nodes} nodes x "
                f"{store.num_features} features] does not match model "
                f"[{self.num_nodes} x {self.in_features}]")
        self.store = store
        return self

    def ingest(self, values: np.ndarray, timestamp_minutes: float) -> None:
        """Feed one raw observation row into the attached feature store."""
        if self.store is None:
            raise RuntimeError("no FeatureStore attached; call attach_store "
                               "or serve with with_store=True")
        self.store.ingest(values, timestamp_minutes)

    def current_window(self) -> np.ndarray:
        """The latest model-input window materialised from the store."""
        if self.store is None:
            raise RuntimeError("no FeatureStore attached")
        return self.store.window(self.horizon)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def stage(self, batch: int) -> np.ndarray:
        """A ``[batch, horizon, nodes, features]`` view of the persistent
        staging buffer.  Fill it and hand it to :meth:`predict`, which
        recognises the view and skips its staging copy — the seam the
        :class:`~repro.serving.service.ForecastService` materialises
        micro-batches through."""
        if not 1 <= batch <= self.max_batch:
            raise ValueError(f"batch {batch} outside [1, {self.max_batch}]")
        return self._in_buf[:batch]

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Forward ``[batch, horizon, nodes, features]`` standardized
        windows; returns ``[batch, horizon, nodes, 1]`` standardized
        predictions.

        The input is staged through the session's persistent buffer (no
        per-request allocation) and the forward runs under ``no_grad``
        with eval mode asserted, so serving can never extend the autograd
        graph or trip training-only behaviour.
        """
        windows = np.asarray(windows)
        if windows.ndim == 3:
            windows = windows[None]
        expected = (self.horizon, self.num_nodes, self.in_features)
        if windows.ndim != 4 or windows.shape[1:] != expected:
            raise ShapeError(f"expected [batch, {expected[0]}, {expected[1]}, "
                             f"{expected[2]}] windows, got {windows.shape}")
        b = windows.shape[0]
        if b > self.max_batch:
            raise ValueError(f"batch {b} exceeds session max_batch "
                             f"{self.max_batch}; split the request or build "
                             f"the session with a larger max_batch")
        staged = self._in_buf[:b]
        if not (windows.base is self._in_buf
                and windows.ctypes.data == self._in_buf.ctypes.data):
            np.copyto(staged, windows, casting="same_kind")
        with no_grad():
            assert_inference_mode(self.model)
            out = self.model(Tensor(staged))
        self.requests_served += b
        return out.data

    def forecast_current(self) -> np.ndarray:
        """Predict from the attached store's latest window (batch of 1)."""
        return self.predict(self.current_window()[None])[0]

    def to_original_units(self, predictions: np.ndarray) -> np.ndarray:
        """Invert standardization on the primary channel.

        ``predictions`` is ``[..., nodes, 1]`` standardized model output;
        returns ``[..., nodes]`` in original signal units.
        """
        if self.scaler is None:
            raise RuntimeError("session has no scaler; predictions stay "
                               "in standardized units")
        return self.scaler.inverse_transform_channel(predictions[..., 0], 0)
