"""TTL result cache for forecast responses.

A forecast is a pure function of ``(model version, input window)``: the
serving stack runs deterministic ``no_grad`` NumPy forwards, so two
requests carrying bitwise-identical windows against the same deployment
version must produce bitwise-identical predictions.  The cache exploits
that purity — entries are keyed on ``(deployment, version, sensor-set,
window hash)`` and a hit returns a copy of the stored prediction array,
**bitwise equal** to what recomputation would have produced (the gateway
tests and ``gateway_bench`` both pin this).

Time is the gateway's clock (simulated or wall), so TTL expiry is exactly
as reproducible as the request schedule that drives it.  Capacity is
bounded: insertion past ``max_entries`` evicts the least-recently-used
entry first.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


def window_fingerprint(window: np.ndarray) -> str:
    """A collision-resistant digest of one model-input window.

    Hashes dtype + shape + raw bytes (C-order), so two windows collide
    only if they are bitwise identical arrays of the same shape.
    """
    window = np.ascontiguousarray(window)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(window.dtype).encode())
    h.update(str(window.shape).encode())
    h.update(window.tobytes())
    return h.hexdigest()


def cache_key(deployment: str, version: str, window: np.ndarray,
              sensors: np.ndarray | None = None) -> tuple:
    """The full cache key: deployment identity + sensor subset + window.

    ``sensors=None`` means "all sensors" (the whole-graph forecast the
    front door serves by default); a subset keys separately so routed
    per-sensor answers never alias whole-graph ones.
    """
    sensor_key = ("all" if sensors is None
                  else tuple(int(s) for s in np.atleast_1d(sensors)))
    return (str(deployment), str(version), sensor_key,
            window_fingerprint(window))


@dataclass
class CacheStats:
    """Aggregate cache accounting."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    expirations: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_hits: int = 0
    corruptions_detected: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "insertions": self.insertions,
                "expirations": self.expirations,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_hits": self.stale_hits,
                "corruptions_detected": self.corruptions_detected,
                "hit_rate": self.hit_rate}


@dataclass
class _Entry:
    predictions: np.ndarray
    expires: float
    deployment: str = ""
    fingerprint: str = ""       # digest of the stored array at put time
    expired_noted: bool = False  # expiry counted once in stats
    nbytes: int = field(init=False)

    def __post_init__(self):
        self.nbytes = int(self.predictions.nbytes)


class ResultCache:
    """LRU + TTL cache of completed forecasts.

    Parameters
    ----------
    ttl:
        seconds (on the supplied clock) an entry stays valid.
    max_entries:
        LRU capacity bound; inserting past it evicts the coldest entry.
    clock:
        the gateway's clock — simulated or wall, shared with the queues
        so expiry composes with the request schedule.
    """

    def __init__(self, *, ttl: float = 60.0, max_entries: int = 1024,
                 clock: Callable[[], float] | None = None):
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        import time
        self.ttl = float(ttl)
        self.max_entries = int(max_entries)
        self.clock = clock if clock is not None else time.perf_counter
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_nbytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    # ------------------------------------------------------------------
    def get(self, key: tuple) -> np.ndarray | None:
        """The cached predictions for ``key`` (an owned copy), or ``None``.

        Expired entries miss (counted once per entry) but stay resident
        until LRU eviction or :meth:`purge_expired` — they are the
        degradation ladder's stale inventory, reachable via
        :meth:`get_stale` when a deployment goes down.  A live hit
        refreshes LRU recency but never the TTL — an entry's lifetime is
        bounded by its insertion time, so a hot key cannot serve
        arbitrarily stale data as *fresh*.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self.clock() >= entry.expires:
            if not entry.expired_noted:
                entry.expired_noted = True
                self.stats.expirations += 1
            self.stats.misses += 1
            return None
        if not self._verify(key, entry):
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.predictions.copy()

    def get_stale(self, key: tuple) -> np.ndarray | None:
        """The entry for ``key`` ignoring TTL — the degradation path.

        A stale answer is still keyed on the exact window fingerprint and
        still integrity-checked against its stored digest, so degraded
        responses are bitwise-equal to the forecast that was cached; only
        freshness is sacrificed.  Does not refresh LRU recency.
        """
        entry = self._entries.get(key)
        if entry is None or not self._verify(key, entry):
            return None
        self.stats.stale_hits += 1
        return entry.predictions.copy()

    def _verify(self, key: tuple, entry: _Entry) -> bool:
        """Integrity check: drop (never serve) an entry whose bytes no
        longer match the digest recorded at insertion."""
        if window_fingerprint(entry.predictions) == entry.fingerprint:
            return True
        del self._entries[key]
        self.stats.corruptions_detected += 1
        return False

    def corrupt(self, key: tuple) -> bool:
        """Chaos hook (``store_corruption`` fault events): flip one byte
        of the stored entry in place; returns whether ``key`` was
        resident.  The integrity check catches it on the next read."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        flat = entry.predictions.view(np.uint8).reshape(-1)
        flat[0] ^= 0xFF
        return True

    def put(self, key: tuple, predictions: np.ndarray) -> None:
        """Store one completed forecast (an owned copy) under ``key``."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        stored = np.ascontiguousarray(predictions).copy()
        self._entries[key] = _Entry(
            predictions=stored, expires=self.clock() + self.ttl,
            deployment=str(key[0]), fingerprint=window_fingerprint(stored))
        self.stats.insertions += 1

    def invalidate(self, deployment: str | None = None) -> int:
        """Drop entries (all, or one deployment's); returns the count.

        Version-keyed entries can never serve a swapped deployment's new
        traffic anyway — invalidation just releases their memory eagerly.
        """
        if deployment is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [k for k, e in self._entries.items()
                     if e.deployment == str(deployment)]
            for k in stale:
                del self._entries[k]
            dropped = len(stale)
        self.stats.invalidations += dropped
        return dropped

    def purge_expired(self) -> int:
        """Drop every entry past its TTL now; returns the count."""
        now = self.clock()
        stale = [k for k, e in self._entries.items() if now >= e.expires]
        for k in stale:
            del self._entries[k]
        self.stats.expirations += len(stale)
        return len(stale)
