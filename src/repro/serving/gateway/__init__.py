"""``repro.serving.gateway``: the multi-tenant serving front door.

Everything PRs 3-5 built — sessions, micro-batching, sharding, failover —
serves one model to one caller.  This package is the production front
end over all of it:

- :class:`~repro.serving.gateway.deployments.DeploymentRegistry` — named,
  version-pinned deployments (warm/cold replicas, atomic blue-green
  checkpoint swaps that drain in-flight requests).
- :class:`~repro.serving.gateway.tenancy.TenantManager` — API-key auth,
  deterministic token-bucket quotas, per-tenant isolated feature stores.
- :class:`~repro.serving.gateway.admission.AdmissionController` —
  deadline-projection load shedding, recorded per tenant.
- :class:`~repro.serving.gateway.result_cache.ResultCache` — TTL result
  cache keyed on (deployment, version, sensor-set, window hash); hits
  are bitwise equal to recomputation.
- :class:`~repro.serving.gateway.gateway.Gateway` — the app factory tying
  them together on the subsystem's ManualClock/real-clock duality.

Self-healing lives in :mod:`repro.serving.resilience` (circuit breakers,
deadline-budgeted retries, hedging, graceful degradation, canary-gated
swaps with auto-rollback) and threads through every request the gateway
serves.

The declarative entry point is ``repro.api.build_gateway`` (and
``serve(..., server="gateway")`` for the single-deployment case).
"""

from repro.serving.gateway.admission import AdmissionController, ShedDecision
from repro.serving.gateway.deployments import (
    Deployment,
    DeploymentRegistry,
    SwapRecord,
)
from repro.serving.gateway.gateway import (
    Gateway,
    GatewayResponse,
    GatewayStats,
    TERMINAL_STATUSES,
)
from repro.serving.gateway.result_cache import (
    CacheStats,
    ResultCache,
    cache_key,
    window_fingerprint,
)
from repro.serving.gateway.tenancy import (
    AuthError,
    Tenant,
    TenantManager,
    TenantQuota,
    TenantStats,
)
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitTransition,
    DeploymentFaultInjector,
    GatewayResilience,
    HealthMonitor,
    ResiliencePolicy,
    RollbackRecord,
)

__all__ = [
    "AdmissionController",
    "AuthError",
    "CacheStats",
    "CircuitBreaker",
    "CircuitTransition",
    "Deployment",
    "DeploymentFaultInjector",
    "DeploymentRegistry",
    "Gateway",
    "GatewayResilience",
    "GatewayResponse",
    "GatewayStats",
    "HealthMonitor",
    "ResiliencePolicy",
    "ResultCache",
    "RollbackRecord",
    "ShedDecision",
    "SwapRecord",
    "TERMINAL_STATUSES",
    "Tenant",
    "TenantManager",
    "TenantQuota",
    "TenantStats",
    "cache_key",
    "window_fingerprint",
]
