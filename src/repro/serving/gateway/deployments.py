"""Named, version-pinned model deployments with blue-green swaps.

A :class:`Deployment` is one served model behind the gateway: a
version-pinned session (local :class:`~repro.serving.session.ModelSession`
or sharded :class:`~repro.serving.sharding.ShardedSession`) wrapped in
its own :class:`~repro.serving.service.ForecastService` (micro-batch
queue + stats) on the gateway's shared clock.  Deployments start *warm*
(session live, buffers allocated) or *cold* (only a rebuildable source —
a checkpoint path or factory — held; the session is built on first touch
and the warm-up cost recorded).

**Blue-green swap.**  :meth:`DeploymentRegistry.swap` replaces a
deployment's checkpoint atomically with respect to requests: the green
session is fully built *first* (a failing build leaves blue serving
untouched), the blue queue is then drained — every in-flight request
completes against the version it was admitted under — and only then does
the service pointer flip.  Zero requests are dropped; the drained
forecasts are returned so the caller can deliver them, and every swap is
recorded as a :class:`SwapRecord` (``gateway_bench`` gates on the
zero-drop invariant).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.serving.cache import FeatureStore
from repro.serving.service import Forecast, ForecastService
from repro.utils.errors import ShapeError


def _resolve_session(source: Any) -> Any:
    """Materialise a session from a source: a live session (has
    ``predict``), a zero-arg factory, or a self-describing checkpoint
    path."""
    if hasattr(source, "predict"):
        return source
    if callable(source):
        return source()
    if isinstance(source, str):
        from repro.serving.session import ModelSession
        return ModelSession.from_checkpoint(source)
    raise TypeError(f"deployment source must be a session, factory or "
                    f"checkpoint path, got {type(source).__name__}")


@dataclass(frozen=True)
class SwapRecord:
    """One completed blue-green swap."""

    deployment: str
    old_version: str
    new_version: str
    drained: int            # in-flight requests completed on blue
    dropped: int            # must be 0: the zero-drop invariant
    seconds: float          # wall time to build green + drain + flip
    at: float               # gateway-clock time of the flip


class Deployment:
    """One named deployment: version pin, replica state, service."""

    def __init__(self, name: str, source: Any, *, version: str = "v1",
                 state: str = "warm", clock: Callable[[], float],
                 max_batch: int = 8, max_wait: float = 0.005,
                 service_time: Callable[[int], float] | None = None,
                 fallback: str | None = None):
        if state not in ("warm", "cold"):
            raise ValueError(f"state must be 'warm' or 'cold', got {state!r}")
        if state == "cold" and hasattr(source, "predict"):
            raise ValueError(
                "a cold deployment needs a rebuildable source (checkpoint "
                "path or factory), not a live session — cold means the "
                "session does not exist yet")
        self.name = str(name)
        self.version = str(version)
        self.state = state
        self.source = source
        self.clock = clock
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.service_time = service_time
        self.warm_seconds = 0.0     # wall cost of the last activation
        self.activations = 0
        self.swaps: list[SwapRecord] = []
        # Resilience state: which deployment degrades for this one, the
        # chaos injector (threaded into every service this deployment
        # activates), crash-restart count, and a small ring of recently
        # served windows — canary inputs for post-swap health checks.
        self.fallback = None if fallback is None else str(fallback)
        self.fault_injector = None
        self.restarts = 0
        self.recent_windows: deque[np.ndarray] = deque(maxlen=8)
        self.service: ForecastService | None = None
        if state == "warm":
            self._activate()

    # ------------------------------------------------------------------
    # Replica state
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        t0 = time.perf_counter()
        session = _resolve_session(self.source)
        self.service = ForecastService(
            session, max_batch=min(self.max_batch, session.max_batch),
            max_wait=self.max_wait, clock=self.clock,
            service_time=self.service_time)
        self.service.fault_injector = self.fault_injector
        self.warm_seconds = time.perf_counter() - t0
        self.activations += 1
        self.state = "warm"

    def attach_injector(self, injector: Any) -> None:
        """Wire a chaos injector into this deployment (and its live
        service; re-activation re-attaches it automatically)."""
        self.fault_injector = injector
        if self.service is not None:
            self.service.fault_injector = injector

    def restart(self) -> None:
        """Bring a crashed session back up.

        Crashes are injected (the session object itself is intact), so a
        restart revives the injector's fail-fast latch and counts the
        incident; forecasts after recovery stay bitwise-identical to an
        unfaulted run.  Already-fired one-shot crash events do not
        refire.
        """
        self.restarts += 1
        if self.fault_injector is not None:
            self.fault_injector.revive()

    def note_window(self, window: np.ndarray | None) -> None:
        """Remember a recently served window (canary material)."""
        if window is not None:
            self.recent_windows.append(np.ascontiguousarray(window).copy())

    def rollback(self, session: Any, *, version: str, source: Any) -> None:
        """Restore a previous (blue) session after a failed canary.

        The flip mirrors :meth:`swap`'s pointer assignment; the caller
        (the gateway) drains green's queue first and records the
        :class:`~repro.serving.resilience.RollbackRecord`.
        """
        self.warm()
        self.service.session = session
        self.version = str(version)
        self.source = source

    def warm(self) -> "Deployment":
        """Ensure the session is live (cold deployments build it here)."""
        if self.service is None:
            self._activate()
        return self

    def cool(self) -> "Deployment":
        """Release the session (only rebuildable deployments may cool)."""
        if hasattr(self.source, "predict"):
            raise ValueError(f"deployment {self.name!r} wraps a live "
                             f"session and cannot be cooled; register a "
                             f"checkpoint path or factory instead")
        if self.service is not None and len(self.service.queue):
            raise RuntimeError(f"deployment {self.name!r} has "
                               f"{len(self.service.queue)} in-flight "
                               f"request(s); drain before cooling")
        self.service = None
        self.state = "cold"
        return self

    @property
    def session(self) -> Any:
        return self.warm().service.session

    @property
    def in_flight(self) -> int:
        return len(self.service.queue) if self.service is not None else 0

    # ------------------------------------------------------------------
    def new_store(self, capacity: int | None = None) -> FeatureStore:
        """A fresh tenant-private feature store shaped for this model.

        Tenants stream into their own stores (never the session's), so
        per-tenant state stays isolated even when the backing session is
        shared or sharded.
        """
        session = self.session
        if session.scaler is None:
            raise RuntimeError(f"deployment {self.name!r} has no scaler; "
                               f"streamed (window=None) forecasts need one")
        add_time = getattr(session, "add_time_feature", None)
        if add_time is None:
            store = getattr(session, "store", None)
            add_time = (store.add_time_feature if store is not None
                        else session.in_features == 2)
        return FeatureStore(
            session.scaler, num_nodes=session.num_nodes,
            raw_features=session.in_features - int(bool(add_time)),
            capacity=capacity or 4 * session.horizon,
            add_time_feature=bool(add_time))

    # ------------------------------------------------------------------
    def swap(self, source: Any, *, version: str) -> tuple[SwapRecord,
                                                          list[Forecast]]:
        """Blue-green swap to ``source`` pinned at ``version``.

        Returns the record and the drained in-flight forecasts (completed
        on the old session; the gateway delivers them to their tenants).
        """
        if str(version) == self.version:
            raise ValueError(f"swap needs a new version pin; deployment "
                             f"{self.name!r} is already at {self.version!r}")
        t0 = time.perf_counter()
        self.warm()
        blue = self.service.session
        green = _resolve_session(source)       # build green before any drain
        for attr in ("horizon", "num_nodes", "in_features"):
            if getattr(green, attr) != getattr(blue, attr):
                raise ShapeError(
                    f"green session {attr}={getattr(green, attr)} does not "
                    f"match blue {attr}={getattr(blue, attr)}; a swap may "
                    f"change weights, never the model interface")
        if green.max_batch < self.service.queue.max_batch:
            raise ValueError(
                f"green session max_batch {green.max_batch} is below the "
                f"queue's {self.service.queue.max_batch}; rebuild it with "
                f"at least the deployment's staging capacity")
        drained = self.service.flush()         # blue finishes its queue
        dropped = len(self.service.queue)      # flush() empties it: 0
        self.service.session = green           # the atomic flip
        old_version, self.version = self.version, str(version)
        self.source = source
        record = SwapRecord(
            deployment=self.name, old_version=old_version,
            new_version=self.version, drained=len(drained), dropped=dropped,
            seconds=time.perf_counter() - t0, at=self.clock())
        self.swaps.append(record)
        return record, drained

    def describe(self) -> dict:
        return {"name": self.name, "version": self.version,
                "state": self.state, "in_flight": self.in_flight,
                "activations": self.activations,
                "warm_seconds": self.warm_seconds,
                "swaps": len(self.swaps),
                "fallback": self.fallback,
                "restarts": self.restarts}


class DeploymentRegistry:
    """Named deployments sharing one clock and default batching knobs."""

    def __init__(self, clock: Callable[[], float], *, max_batch: int = 8,
                 max_wait: float = 0.005,
                 service_time: Callable[[int], float] | None = None):
        self.clock = clock
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.service_time = service_time
        self._deployments: dict[str, Deployment] = {}

    def __len__(self) -> int:
        return len(self._deployments)

    def __contains__(self, name: str) -> bool:
        return str(name) in self._deployments

    def names(self) -> list[str]:
        return sorted(self._deployments)

    def register(self, name: str, source: Any, *, version: str = "v1",
                 state: str = "warm", max_batch: int | None = None,
                 max_wait: float | None = None,
                 service_time: Callable[[int], float] | None = None,
                 fallback: str | None = None) -> Deployment:
        """Add a deployment (per-deployment knobs override the defaults)."""
        name = str(name)
        if name in self._deployments:
            raise ValueError(f"deployment {name!r} already registered; use "
                             f"swap() to replace its checkpoint")
        dep = Deployment(
            name, source, version=version, state=state, clock=self.clock,
            max_batch=self.max_batch if max_batch is None else max_batch,
            max_wait=self.max_wait if max_wait is None else max_wait,
            service_time=(self.service_time if service_time is None
                          else service_time),
            fallback=fallback)
        self._deployments[name] = dep
        return dep

    def get(self, name: str) -> Deployment:
        try:
            return self._deployments[str(name)]
        except KeyError:
            raise KeyError(f"unknown deployment {name!r}; registered: "
                           f"{self.names()}") from None

    def deployments(self) -> list[Deployment]:
        return [self._deployments[n] for n in self.names()]

    def describe(self) -> dict[str, dict]:
        return {n: d.describe() for n, d in sorted(self._deployments.items())}
