"""Tenants: auth keys, token-bucket quotas, isolated streaming state.

The gateway is multi-tenant in the strong sense: tenants share model
deployments (weights are read-only at serving time) but **nothing
stateful**.  Each tenant authenticates with an API key, spends a
token-bucket quota refilled on the gateway clock, and streams
observations into its own private :class:`~repro.serving.cache.
FeatureStore` per deployment — tenant A's ingests can never leak into
tenant B's ``window=None`` forecasts (the isolation test pins this).

Quotas are deterministic: the bucket refills continuously at
``rate_qps`` tokens per clock second up to ``burst``, so on a
:class:`~repro.serving.service.ManualClock` the exact sequence of
admit/reject decisions is a pure function of the request schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.errors import ReproError


class AuthError(ReproError, PermissionError):
    """An API key did not resolve to a registered tenant."""


@dataclass
class TenantQuota:
    """Token bucket: sustained ``rate_qps`` with ``burst`` headroom.

    ``rate_qps=None`` disables metering (unlimited tenants pay no quota
    bookkeeping at all).
    """

    rate_qps: float | None = None
    burst: int = 32

    def __post_init__(self):
        if self.rate_qps is not None and self.rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, "
                             f"got {self.rate_qps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


@dataclass
class TenantStats:
    """Per-tenant request accounting, kept by the gateway."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    quota_rejected: int = 0
    deadline_misses: int = 0
    degraded: int = 0           # answered from stale cache or a fallback
    failed: int = 0             # degradation ladder exhausted

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class Tenant:
    """One registered tenant: identity, quota state, private stores."""

    def __init__(self, tenant_id: str, api_key: str,
                 quota: TenantQuota | None = None):
        self.tenant_id = str(tenant_id)
        self.api_key = str(api_key)
        self.quota = quota or TenantQuota()
        self.stats = TenantStats()
        #: deployment name -> this tenant's private FeatureStore.
        self.stores: dict = {}
        self._tokens = float(self.quota.burst)
        self._refilled_at: float | None = None

    # ------------------------------------------------------------------
    def try_spend_token(self, now: float) -> bool:
        """Consume one quota token at clock time ``now`` if available."""
        if self.quota.rate_qps is None:
            return True
        if self._refilled_at is None:
            self._refilled_at = now
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(float(self.quota.burst),
                           self._tokens + elapsed * self.quota.rate_qps)
        self._refilled_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def tokens_available(self, now: float) -> float:
        """Current bucket level (inf for unmetered tenants); read-only."""
        if self.quota.rate_qps is None:
            return float("inf")
        if self._refilled_at is None:
            return float(self.quota.burst)
        elapsed = max(0.0, now - self._refilled_at)
        return min(float(self.quota.burst),
                   self._tokens + elapsed * self.quota.rate_qps)


class TenantManager:
    """Registry of tenants with API-key authentication."""

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self._by_id: dict[str, Tenant] = {}
        self._by_key: dict[str, Tenant] = {}
        self.auth_failures = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def names(self) -> list[str]:
        return sorted(self._by_id)

    # ------------------------------------------------------------------
    def register(self, tenant_id: str, *, api_key: str | None = None,
                 rate_qps: float | None = None, burst: int = 32) -> Tenant:
        """Add a tenant; returns it (its ``api_key`` is the credential).

        ``api_key`` defaults to a deterministic ``key-<tenant_id>`` so
        examples and tests stay reproducible; production callers pass
        real secrets.
        """
        tenant_id = str(tenant_id)
        if tenant_id in self._by_id:
            raise ValueError(f"tenant {tenant_id!r} already registered")
        api_key = api_key if api_key is not None else f"key-{tenant_id}"
        if api_key in self._by_key:
            raise ValueError(f"api key already in use (tenant "
                             f"{self._by_key[api_key].tenant_id!r})")
        tenant = Tenant(tenant_id, api_key,
                        TenantQuota(rate_qps=rate_qps, burst=burst))
        self._by_id[tenant_id] = tenant
        self._by_key[api_key] = tenant
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        try:
            return self._by_id[str(tenant_id)]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant_id!r}; registered: "
                           f"{self.names()}") from None

    def authenticate(self, api_key: str) -> Tenant:
        """Resolve an API key to its tenant or raise :class:`AuthError`."""
        tenant = self._by_key.get(str(api_key))
        if tenant is None:
            self.auth_failures += 1
            raise AuthError("invalid API key")
        return tenant

    def per_tenant_stats(self) -> dict[str, dict]:
        return {tid: t.stats.to_dict() for tid, t in sorted(self._by_id.items())}
