"""The multi-tenant serving gateway: one front door over many models.

:class:`Gateway` composes the pieces of this package into the
millions-of-users entry point the roadmap asks for:

- a :class:`~repro.serving.gateway.deployments.DeploymentRegistry` of
  named, version-pinned deployments (each its own micro-batching
  :class:`~repro.serving.service.ForecastService` on the shared clock,
  warm or cold, blue-green swappable);
- a :class:`~repro.serving.gateway.tenancy.TenantManager` — API-key
  auth, token-bucket quotas, per-tenant isolated feature stores;
- an :class:`~repro.serving.gateway.admission.AdmissionController` that
  sheds requests whose projected completion blows their deadline;
- an optional :class:`~repro.serving.gateway.result_cache.ResultCache`
  whose hits are bitwise equal to recomputation.

Every request flows ``authenticate -> quota -> cache -> admission ->
micro-batch queue``; each stage that refuses produces a terminal
:class:`GatewayResponse` with an explicit status, so the load generator
can separate goodput from shed, quota and cache traffic exactly.

Time keeps the subsystem's clock duality: the gateway runs on a
:class:`~repro.serving.service.ManualClock` by default (bit-reproducible
schedules under the load generator) or on ``time.perf_counter`` for wall
operation, where :meth:`handle_concurrent` serves requests through a
stdlib thread pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import RLock
from typing import Any, Callable

import numpy as np

from repro.serving.gateway.admission import AdmissionController
from repro.serving.gateway.deployments import (
    Deployment, DeploymentRegistry, SwapRecord)
from repro.serving.gateway.result_cache import ResultCache, cache_key
from repro.serving.gateway.tenancy import Tenant, TenantManager
from repro.serving.service import Forecast, ManualClock
from repro.utils.errors import ShapeError

#: Terminal response statuses (everything except "admitted").
TERMINAL_STATUSES = ("ok", "cached", "shed", "rejected_quota")


@dataclass
class GatewayResponse:
    """The gateway's answer to one request.

    ``status`` is the request's fate: ``"admitted"`` (queued; the
    forecast arrives at a later :meth:`Gateway.poll`), ``"ok"``
    (completed, ``forecast`` attached), ``"cached"`` (served from the
    result cache, bitwise equal to recomputation), ``"shed"`` (admission
    control refused — see ``reason``), or ``"rejected_quota"`` (the
    tenant's token bucket ran dry).
    """

    status: str
    tenant: str
    deployment: str
    version: str
    request_id: int | None = None
    forecast: Forecast | None = None
    cached: bool = False
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    @property
    def latency(self) -> float:
        """Completion latency on the gateway clock (0.0 for cache hits)."""
        if self.status == "cached":
            return 0.0
        if self.forecast is None:
            raise RuntimeError(f"request {self.request_id} has no forecast "
                               f"yet (status {self.status!r})")
        return self.forecast.latency


@dataclass
class GatewayStats:
    """Aggregate request accounting across all tenants and deployments."""

    requests: int = 0
    admitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    quota_rejected: int = 0
    swaps: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class Gateway:
    """Multi-tenant, admission-controlled front end over model deployments.

    Parameters
    ----------
    clock:
        shared clock for queues, quotas, cache TTLs and latency stamps;
        defaults to a fresh :class:`ManualClock` (simulated time).
    max_batch / max_wait / service_time:
        default micro-batching knobs for deployments (overridable per
        deployment at registration).
    cache_ttl / cache_entries:
        result-cache lifetime and capacity; ``cache_ttl=None`` disables
        caching entirely.
    max_queue_depth:
        hard per-deployment pending cap; arrivals past it are shed.
    default_deadline:
        seconds added to the submit-time clock when a request carries no
        explicit deadline (``None`` = unbounded requests never shed on
        projection, only on the depth cap).
    store_capacity:
        rows kept in each tenant-private feature store.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None,
                 max_batch: int = 8, max_wait: float = 0.005,
                 service_time: Callable[[int], float] | None = None,
                 cache_ttl: float | None = None, cache_entries: int = 1024,
                 max_queue_depth: int = 256, ewma_alpha: float = 0.2,
                 default_deadline: float | None = None,
                 store_capacity: int | None = None):
        self.clock = clock if clock is not None else ManualClock()
        self.deployments = DeploymentRegistry(
            self.clock, max_batch=max_batch, max_wait=max_wait,
            service_time=service_time)
        self.tenants = TenantManager(self.clock)
        self.admission = AdmissionController(
            self.clock, max_queue_depth=max_queue_depth,
            ewma_alpha=ewma_alpha)
        self.cache = (ResultCache(ttl=cache_ttl, max_entries=cache_entries,
                                  clock=self.clock)
                      if cache_ttl is not None else None)
        self.default_deadline = default_deadline
        self.store_capacity = store_capacity
        self.stats = GatewayStats()
        #: (deployment, request_id) -> (tenant_id, cache key or None)
        self._pending: dict[tuple[str, int], tuple[str, tuple | None]] = {}
        self._completed: list[GatewayResponse] = []
        self._lock = RLock()

    # ------------------------------------------------------------------
    # App factory: registration
    # ------------------------------------------------------------------
    def add_deployment(self, name: str, source: Any, *, version: str = "v1",
                       state: str = "warm", **knobs) -> Deployment:
        """Register a deployment (session, factory, or checkpoint path)."""
        dep = self.deployments.register(name, source, version=version,
                                        state=state, **knobs)
        if dep.service_time is not None:
            # A synthetic service-time model makes projections exact from
            # the first request; measured deployments learn by EWMA.
            self.admission.seed_estimate(dep.name,
                                         dep.service_time(dep.max_batch))
        return dep

    def add_tenant(self, tenant_id: str, *, api_key: str | None = None,
                   rate_qps: float | None = None, burst: int = 32) -> Tenant:
        """Register a tenant; the returned object's ``api_key`` is its
        credential for every data-plane call."""
        return self.tenants.register(tenant_id, api_key=api_key,
                                     rate_qps=rate_qps, burst=burst)

    # ------------------------------------------------------------------
    # Streaming observations (tenant-isolated)
    # ------------------------------------------------------------------
    def ingest(self, api_key: str, deployment: str, values: np.ndarray,
               timestamp_minutes: float) -> None:
        """Stream one observation row into the calling tenant's private
        store for ``deployment`` (created lazily, never shared)."""
        tenant = self.tenants.authenticate(api_key)
        dep = self.deployments.get(deployment).warm()
        store = tenant.stores.get(dep.name)
        if store is None:
            store = dep.new_store(self.store_capacity)
            tenant.stores[dep.name] = store
        store.ingest(values, timestamp_minutes)

    def _tenant_window(self, tenant: Tenant, dep: Deployment) -> np.ndarray:
        store = tenant.stores.get(dep.name)
        if store is None:
            raise RuntimeError(
                f"tenant {tenant.tenant_id!r} has streamed nothing into "
                f"deployment {dep.name!r}; ingest history or submit an "
                f"explicit window")
        return store.window(dep.session.horizon)

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def _check_window(self, dep: Deployment, window: np.ndarray) -> np.ndarray:
        session = dep.session
        window = np.asarray(window)
        expected = (session.horizon, session.num_nodes, session.in_features)
        if window.shape != expected:
            raise ShapeError(f"expected a {expected} window for deployment "
                             f"{dep.name!r}, got {window.shape}")
        return window

    def submit(self, api_key: str, deployment: str,
               window: np.ndarray | None = None, *,
               deadline: float | None = None) -> GatewayResponse:
        """Run one request through auth -> quota -> cache -> admission.

        Returns a terminal response, or an ``"admitted"`` ticket whose
        forecast arrives from a later :meth:`poll`/:meth:`flush`.
        ``deadline`` is absolute clock time; when omitted the gateway's
        ``default_deadline`` (relative seconds) applies.
        """
        tenant = self.tenants.authenticate(api_key)
        dep = self.deployments.get(deployment).warm()
        now = self.clock()
        tenant.stats.submitted += 1
        self.stats.requests += 1

        def refuse(status: str, reason: str = "") -> GatewayResponse:
            return GatewayResponse(status=status, tenant=tenant.tenant_id,
                                   deployment=dep.name, version=dep.version,
                                   reason=reason)

        if not tenant.try_spend_token(now):
            tenant.stats.quota_rejected += 1
            self.stats.quota_rejected += 1
            return refuse("rejected_quota", "token bucket empty")
        window = (self._tenant_window(tenant, dep) if window is None
                  else self._check_window(dep, window))
        if deadline is None and self.default_deadline is not None:
            deadline = now + self.default_deadline

        key = None
        if self.cache is not None:
            key = cache_key(dep.name, dep.version, window)
            hit = self.cache.get(key)
            if hit is not None:
                tenant.stats.cache_hits += 1
                self.stats.cache_hits += 1
                fc = Forecast(request_id=-1, predictions=hit, latency=0.0,
                              queue_wait=0.0, batch_size=0,
                              deadline_missed=False)
                resp = refuse("cached")
                resp.cached, resp.forecast = True, fc
                return resp

        svc = dep.service
        decision = self.admission.admit(svc.queue, tenant=tenant.tenant_id,
                                        deployment=dep.name,
                                        deadline=deadline)
        if decision is not None:
            tenant.stats.shed += 1
            self.stats.shed += 1
            return refuse("shed", decision.reason)
        rid = svc.submit(window, deadline=deadline)
        self._pending[(dep.name, rid)] = (tenant.tenant_id, key)
        tenant.stats.admitted += 1
        self.stats.admitted += 1
        return GatewayResponse(status="admitted", tenant=tenant.tenant_id,
                               deployment=dep.name, version=dep.version,
                               request_id=rid)

    def request(self, api_key: str, deployment: str,
                window: np.ndarray | None = None, *,
                deadline: float | None = None) -> GatewayResponse:
        """Synchronous request: submit, then force the deployment's queue
        through (coalescing with anything pending) and return this
        request's completed response.  Other requests' completions stay
        buffered for :meth:`poll`/:meth:`flush`."""
        resp = self.submit(api_key, deployment, window, deadline=deadline)
        if resp.status != "admitted":
            return resp
        dep = self.deployments.get(deployment)
        self._drain_deployment(dep, force=True)
        for i, r in enumerate(self._completed):
            if r.deployment == dep.name and r.request_id == resp.request_id:
                return self._completed.pop(i)
        raise RuntimeError(                                # pragma: no cover
            f"request {resp.request_id} never completed")

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _absorb(self, dep: Deployment, forecasts: list[Forecast]) -> None:
        """Attribute completed forecasts to tenants, fill the cache, and
        buffer the responses for the next poll."""
        for fc in forecasts:
            tenant_id, key = self._pending.pop((dep.name, fc.request_id))
            tenant = self.tenants.get(tenant_id)
            tenant.stats.completed += 1
            tenant.stats.deadline_misses += int(fc.deadline_missed)
            self.stats.completed += 1
            if self.cache is not None and key is not None:
                self.cache.put(key, fc.predictions)
            self._completed.append(GatewayResponse(
                status="ok", tenant=tenant_id, deployment=dep.name,
                version=dep.version, request_id=fc.request_id, forecast=fc))

    def _drain_deployment(self, dep: Deployment, *, force: bool) -> None:
        svc = dep.service
        if svc is None:
            return
        batches0 = svc.stats.batches
        busy0 = svc.stats.busy_seconds
        self._absorb(dep, svc.flush() if force else svc.poll())
        dispatched = svc.stats.batches - batches0
        if dispatched:
            self.admission.observe(
                dep.name, (svc.stats.busy_seconds - busy0) / dispatched)

    def poll(self) -> list[GatewayResponse]:
        """Dispatch every due batch on every deployment; returns (and
        drains) newly completed responses."""
        for dep in self.deployments.deployments():
            self._drain_deployment(dep, force=False)
        done, self._completed = self._completed, []
        return done

    def flush(self) -> list[GatewayResponse]:
        """Force-dispatch everything pending on every deployment."""
        for dep in self.deployments.deployments():
            self._drain_deployment(dep, force=True)
        done, self._completed = self._completed, []
        return done

    def time_until_ready(self) -> float | None:
        """Seconds until the earliest coalescing timer fires across all
        deployments (0 when a batch is ready now, ``None`` when every
        queue is empty) — the load generator's event-driven hook."""
        times = [dep.service.queue.time_until_ready()
                 for dep in self.deployments.deployments()
                 if dep.service is not None]
        times = [t for t in times if t is not None]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Blue-green swap
    # ------------------------------------------------------------------
    def swap(self, deployment: str, source: Any, *,
             version: str) -> SwapRecord:
        """Atomically swap ``deployment`` to a new checkpoint ``version``.

        The blue queue drains first (its completions are delivered to
        their tenants at the next poll — zero dropped in-flight
        requests), then the service flips to the green session and the
        deployment's cache entries are invalidated.
        """
        dep = self.deployments.get(deployment)
        svc = dep.service
        batches0 = svc.stats.batches if svc is not None else 0
        busy0 = svc.stats.busy_seconds if svc is not None else 0.0
        record, drained = dep.swap(source, version=version)
        self._absorb(dep, drained)
        svc = dep.service
        dispatched = svc.stats.batches - batches0
        if dispatched:
            self.admission.observe(
                dep.name, (svc.stats.busy_seconds - busy0) / dispatched)
        if self.cache is not None:
            self.cache.invalidate(dep.name)
        self.stats.swaps += 1
        return record

    # ------------------------------------------------------------------
    # Thread-pooled stdlib dispatch (real-clock mode)
    # ------------------------------------------------------------------
    def handle_concurrent(self, requests: list[dict], *,
                          max_workers: int = 8) -> list[GatewayResponse]:
        """Serve many requests concurrently through a stdlib thread pool.

        Each element of ``requests`` is keyword arguments for
        :meth:`submit` (``api_key``, ``deployment``, optional ``window``
        and ``deadline``).  On a real clock the requests are submitted
        from pool threads (micro-batching coalesces whatever lands in the
        same ``max_wait``) and each thread waits for its own completion;
        on a :class:`ManualClock` the pool degenerates to deterministic
        submission order, since simulated time cannot advance
        concurrently.  Responses come back in request order either way.
        """
        requests = list(requests)
        if isinstance(self.clock, ManualClock):
            responses = [self.submit(**kw) for kw in requests]
            done = {(r.deployment, r.request_id): r for r in self.flush()}
            return [done.get((r.deployment, r.request_id), r)
                    if r.status == "admitted" else r for r in responses]

        from concurrent.futures import ThreadPoolExecutor

        ready: dict[tuple[str, int], GatewayResponse] = {}

        def one(kw: dict) -> GatewayResponse:
            with self._lock:
                resp = self.submit(**kw)
            if resp.status != "admitted":
                return resp
            key = (resp.deployment, resp.request_id)
            while True:
                with self._lock:
                    if key in ready:
                        return ready.pop(key)
                    for r in self.poll():
                        ready[(r.deployment, r.request_id)] = r
                    if key in ready:
                        return ready.pop(key)
                time.sleep(1e-4)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(one, requests))

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """One introspection dict: gateway, deployments, tenants, cache."""
        return {
            "stats": self.stats.to_dict(),
            "deployments": self.deployments.describe(),
            "tenants": self.tenants.per_tenant_stats(),
            "auth_failures": self.tenants.auth_failures,
            "shed_by_reason": self.admission.shed_by_reason(),
            "shed_by_tenant": self.admission.shed_by_tenant(),
            "cache": (self.cache.stats.to_dict()
                      if self.cache is not None else None),
        }
