"""The multi-tenant serving gateway: one front door over many models.

:class:`Gateway` composes the pieces of this package into the
millions-of-users entry point the roadmap asks for:

- a :class:`~repro.serving.gateway.deployments.DeploymentRegistry` of
  named, version-pinned deployments (each its own micro-batching
  :class:`~repro.serving.service.ForecastService` on the shared clock,
  warm or cold, blue-green swappable);
- a :class:`~repro.serving.gateway.tenancy.TenantManager` — API-key
  auth, token-bucket quotas, per-tenant isolated feature stores;
- an :class:`~repro.serving.gateway.admission.AdmissionController` that
  sheds requests whose projected completion blows their deadline;
- an optional :class:`~repro.serving.gateway.result_cache.ResultCache`
  whose hits are bitwise equal to recomputation.

Every request flows ``authenticate -> quota -> cache -> admission ->
micro-batch queue``; each stage that refuses produces a terminal
:class:`GatewayResponse` with an explicit status, so the load generator
can separate goodput from shed, quota and cache traffic exactly.

Time keeps the subsystem's clock duality: the gateway runs on a
:class:`~repro.serving.service.ManualClock` by default (bit-reproducible
schedules under the load generator) or on ``time.perf_counter`` for wall
operation, where :meth:`handle_concurrent` serves requests through a
stdlib thread pool.

**Self-healing** (:mod:`repro.serving.resilience`) threads through the
same path: every deployment carries a circuit breaker, failed dispatches
are retried within their original deadline budget (charged through
admission control, so overload still sheds honestly), and a deployment
whose circuit is open degrades gracefully — stale-but-fingerprint-
matching cache entry, then a named fallback deployment, then an explicit
``"failed"`` response.  Blue-green swaps run canary health checks on the
green session and auto-roll back to blue when they fail, dropping zero
requests either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import RLock
from typing import Any, Callable

import numpy as np

from repro.serving.gateway.admission import AdmissionController
from repro.serving.gateway.deployments import (
    Deployment, DeploymentRegistry, SwapRecord)
from repro.serving.gateway.result_cache import ResultCache, cache_key
from repro.serving.gateway.tenancy import Tenant, TenantManager
from repro.serving.resilience import (
    CLOSED, GatewayResilience, HALF_OPEN, OPEN, ResiliencePolicy,
    RollbackRecord)
from repro.serving.service import Forecast, ManualClock
from repro.utils.errors import SessionFailure, ShapeError

#: Terminal response statuses (everything except "admitted").
TERMINAL_STATUSES = ("ok", "cached", "shed", "rejected_quota",
                     "degraded", "failed")


@dataclass
class GatewayResponse:
    """The gateway's answer to one request.

    ``status`` is the request's fate: ``"admitted"`` (queued; the
    forecast arrives at a later :meth:`Gateway.poll`), ``"ok"``
    (completed, ``forecast`` attached), ``"cached"`` (served from the
    result cache, bitwise equal to recomputation), ``"shed"`` (admission
    control refused — see ``reason``), ``"rejected_quota"`` (the
    tenant's token bucket ran dry), ``"degraded"`` (answered, but from
    the degradation ladder — ``degraded_source`` names where: a stale
    cache entry or a fallback deployment), or ``"failed"`` (the ladder
    was exhausted; an explicit refusal, never a hang).
    """

    status: str
    tenant: str
    deployment: str
    version: str
    request_id: int | None = None
    forecast: Forecast | None = None
    cached: bool = False
    reason: str = ""
    degraded_source: str = ""   # "stale_cache" | "fallback:<name>"
    hedged: bool = False        # won a hedged re-dispatch race

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached", "degraded")

    @property
    def latency(self) -> float:
        """Completion latency on the gateway clock (0.0 for cache hits
        and stale-cache degradations, which answer immediately)."""
        if self.status == "cached":
            return 0.0
        if self.forecast is None:
            raise RuntimeError(f"request {self.request_id} has no forecast "
                               f"yet (status {self.status!r})")
        return self.forecast.latency


@dataclass
class GatewayStats:
    """Aggregate request accounting across all tenants and deployments."""

    requests: int = 0
    admitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    quota_rejected: int = 0
    swaps: int = 0
    degraded: int = 0
    failed: int = 0
    rollbacks: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _PendingRecord:
    """Gateway-side bookkeeping for one admitted request.

    ``ticket`` is the (deployment, request_id) identity the caller was
    handed at admission; retries and fallback re-routes move the request
    between queues, but its completion always reports the original
    ticket, so callers match responses without knowing about recovery.
    """

    tenant_id: str
    key: tuple | None           # cache key for the queue it is on now
    window: np.ndarray | None
    deadline: float | None      # original absolute deadline
    ticket_deployment: str
    ticket_version: str
    ticket_id: int
    retries: int = 0
    degraded_source: str = ""   # set once re-routed to a fallback
    partner: tuple | None = field(default=None)  # hedge twin's queue key
    canceled: bool = False      # lost a hedge race; discard on completion
    hedge: bool = False         # this record *is* the hedged duplicate


class Gateway:
    """Multi-tenant, admission-controlled front end over model deployments.

    Parameters
    ----------
    clock:
        shared clock for queues, quotas, cache TTLs and latency stamps;
        defaults to a fresh :class:`ManualClock` (simulated time).
    max_batch / max_wait / service_time:
        default micro-batching knobs for deployments (overridable per
        deployment at registration).
    cache_ttl / cache_entries:
        result-cache lifetime and capacity; ``cache_ttl=None`` disables
        caching entirely.
    max_queue_depth:
        hard per-deployment pending cap; arrivals past it are shed.
    default_deadline:
        seconds added to the submit-time clock when a request carries no
        explicit deadline (``None`` = unbounded requests never shed on
        projection, only on the depth cap).
    store_capacity:
        rows kept in each tenant-private feature store.
    resilience:
        self-healing knobs (:class:`~repro.serving.resilience.
        ResiliencePolicy`); the defaults apply when omitted.  Circuit
        breakers only act when dispatches actually fail or a seeded
        latency baseline blows out, so a healthy gateway behaves
        identically with or without a policy.
    fault_plan:
        a :class:`~repro.runtime.faults.FaultPlan` whose gateway events
        (``session_crash`` / ``session_straggler`` / ``store_corruption``)
        are injected into the named deployments — chaos that composes
        deterministically with the request schedule.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None,
                 max_batch: int = 8, max_wait: float = 0.005,
                 service_time: Callable[[int], float] | None = None,
                 cache_ttl: float | None = None, cache_entries: int = 1024,
                 max_queue_depth: int = 256, ewma_alpha: float = 0.2,
                 default_deadline: float | None = None,
                 store_capacity: int | None = None,
                 resilience: ResiliencePolicy | None = None,
                 fault_plan: Any | None = None):
        self.clock = clock if clock is not None else ManualClock()
        self.deployments = DeploymentRegistry(
            self.clock, max_batch=max_batch, max_wait=max_wait,
            service_time=service_time)
        self.tenants = TenantManager(self.clock)
        self.admission = AdmissionController(
            self.clock, max_queue_depth=max_queue_depth,
            ewma_alpha=ewma_alpha)
        self.cache = (ResultCache(ttl=cache_ttl, max_entries=cache_entries,
                                  clock=self.clock)
                      if cache_ttl is not None else None)
        self.default_deadline = default_deadline
        self.store_capacity = store_capacity
        self.stats = GatewayStats()
        self.resilience = GatewayResilience(
            resilience if resilience is not None else ResiliencePolicy(),
            self.clock, fault_plan=fault_plan)
        #: (queue deployment, queue request_id) -> bookkeeping record
        self._pending: dict[tuple[str, int], _PendingRecord] = {}
        self._completed: list[GatewayResponse] = []
        self._lock = RLock()

    # ------------------------------------------------------------------
    # App factory: registration
    # ------------------------------------------------------------------
    def add_deployment(self, name: str, source: Any, *, version: str = "v1",
                       state: str = "warm", **knobs) -> Deployment:
        """Register a deployment (session, factory, or checkpoint path)."""
        dep = self.deployments.register(name, source, version=version,
                                        state=state, **knobs)
        baseline = None
        if dep.service_time is not None:
            # A synthetic service-time model makes projections exact from
            # the first request; measured deployments learn by EWMA.
            baseline = dep.service_time(dep.max_batch)
            self.admission.seed_estimate(dep.name, baseline)
        self.resilience.register(dep.name, baseline=baseline)
        injector = self.resilience.injector(dep.name)
        if injector is not None:
            dep.attach_injector(injector)
        return dep

    def add_tenant(self, tenant_id: str, *, api_key: str | None = None,
                   rate_qps: float | None = None, burst: int = 32) -> Tenant:
        """Register a tenant; the returned object's ``api_key`` is its
        credential for every data-plane call."""
        return self.tenants.register(tenant_id, api_key=api_key,
                                     rate_qps=rate_qps, burst=burst)

    # ------------------------------------------------------------------
    # Streaming observations (tenant-isolated)
    # ------------------------------------------------------------------
    def ingest(self, api_key: str, deployment: str, values: np.ndarray,
               timestamp_minutes: float) -> None:
        """Stream one observation row into the calling tenant's private
        store for ``deployment`` (created lazily, never shared)."""
        tenant = self.tenants.authenticate(api_key)
        dep = self.deployments.get(deployment).warm()
        store = tenant.stores.get(dep.name)
        if store is None:
            store = dep.new_store(self.store_capacity)
            tenant.stores[dep.name] = store
        store.ingest(values, timestamp_minutes)

    def _tenant_window(self, tenant: Tenant, dep: Deployment) -> np.ndarray:
        store = tenant.stores.get(dep.name)
        if store is None:
            raise RuntimeError(
                f"tenant {tenant.tenant_id!r} has streamed nothing into "
                f"deployment {dep.name!r}; ingest history or submit an "
                f"explicit window")
        return store.window(dep.session.horizon)

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------
    def _check_window(self, dep: Deployment, window: np.ndarray) -> np.ndarray:
        session = dep.session
        window = np.asarray(window)
        expected = (session.horizon, session.num_nodes, session.in_features)
        if window.shape != expected:
            raise ShapeError(f"expected a {expected} window for deployment "
                             f"{dep.name!r}, got {window.shape}")
        return window

    def submit(self, api_key: str, deployment: str,
               window: np.ndarray | None = None, *,
               deadline: float | None = None) -> GatewayResponse:
        """Run one request through auth -> quota -> cache -> admission.

        Returns a terminal response, or an ``"admitted"`` ticket whose
        forecast arrives from a later :meth:`poll`/:meth:`flush`.
        ``deadline`` is absolute clock time; when omitted the gateway's
        ``default_deadline`` (relative seconds) applies.
        """
        tenant = self.tenants.authenticate(api_key)
        dep = self.deployments.get(deployment).warm()
        now = self.clock()
        tenant.stats.submitted += 1
        self.stats.requests += 1

        def refuse(status: str, reason: str = "") -> GatewayResponse:
            return GatewayResponse(status=status, tenant=tenant.tenant_id,
                                   deployment=dep.name, version=dep.version,
                                   reason=reason)

        if not tenant.try_spend_token(now):
            tenant.stats.quota_rejected += 1
            self.stats.quota_rejected += 1
            return refuse("rejected_quota", "token bucket empty")
        window = (self._tenant_window(tenant, dep) if window is None
                  else self._check_window(dep, window))
        if deadline is None and self.default_deadline is not None:
            deadline = now + self.default_deadline
        dep.note_window(window)

        key = None
        if self.cache is not None:
            key = cache_key(dep.name, dep.version, window)
            hit = self.cache.get(key)
            if hit is not None:
                tenant.stats.cache_hits += 1
                self.stats.cache_hits += 1
                fc = Forecast(request_id=-1, predictions=hit, latency=0.0,
                              queue_wait=0.0, batch_size=0,
                              deadline_missed=False)
                resp = refuse("cached")
                resp.cached, resp.forecast = True, fc
                return resp

        # Circuit check (fresh cache hits above answer even when open).
        breaker = self.resilience.breaker(dep.name)
        state = breaker.before_request(now)
        probe = False
        if state == OPEN:
            return self._degrade_submit(tenant, dep, window, key, deadline,
                                        reason="circuit_open")
        if state == HALF_OPEN:
            probe = breaker.try_probe()
            if not probe:
                return self._degrade_submit(tenant, dep, window, key,
                                            deadline,
                                            reason="probe_in_flight")
            # This request *is* the probe: restart a crashed session
            # first so the probe tests actual recovery.
            injector = dep.fault_injector
            if injector is not None and injector.dead:
                dep.restart()
                self.resilience.restarts += 1

        svc = dep.service
        decision = self.admission.admit(svc.queue, tenant=tenant.tenant_id,
                                        deployment=dep.name,
                                        deadline=deadline)
        if decision is not None:
            if probe:
                breaker.cancel_probe()
            tenant.stats.shed += 1
            self.stats.shed += 1
            return refuse("shed", decision.reason)
        rid = svc.submit(window, deadline=deadline)
        rec = _PendingRecord(
            tenant_id=tenant.tenant_id, key=key, window=window,
            deadline=deadline, ticket_deployment=dep.name,
            ticket_version=dep.version, ticket_id=rid)
        self._pending[(dep.name, rid)] = rec
        tenant.stats.admitted += 1
        self.stats.admitted += 1
        if not probe:
            self._maybe_hedge(tenant, dep, rec, window, deadline, now)
        return GatewayResponse(status="admitted", tenant=tenant.tenant_id,
                               deployment=dep.name, version=dep.version,
                               request_id=rid)

    # ------------------------------------------------------------------
    # The degradation ladder
    # ------------------------------------------------------------------
    def _fallback_for(self, dep: Deployment) -> Deployment | None:
        """The deployment's named fallback, warmed, if it exists, is not
        the deployment itself, and has a closed circuit."""
        if dep.fallback is None or dep.fallback == dep.name:
            return None
        if dep.fallback not in self.deployments:
            return None
        fdep = self.deployments.get(dep.fallback).warm()
        if self.resilience.breaker(fdep.name).before_request() != CLOSED:
            return None
        return fdep

    def _stale_answer(self, key: tuple | None) -> np.ndarray | None:
        """A stale-but-integrity-verified cache entry, when policy and
        cache allow it."""
        if (not self.resilience.policy.serve_stale or self.cache is None
                or key is None):
            return None
        return self.cache.get_stale(key)

    def _degrade_submit(self, tenant: Tenant, dep: Deployment,
                        window: np.ndarray, key: tuple | None,
                        deadline: float | None, *,
                        reason: str) -> GatewayResponse:
        """Walk the ladder for a request whose deployment is unavailable
        at submit time: stale cache -> fallback deployment -> failed."""
        stale = self._stale_answer(key)
        if stale is not None:
            tenant.stats.degraded += 1
            self.stats.degraded += 1
            self.resilience.degraded_stale += 1
            fc = Forecast(request_id=-1, predictions=stale, latency=0.0,
                          queue_wait=0.0, batch_size=0,
                          deadline_missed=False)
            return GatewayResponse(
                status="degraded", tenant=tenant.tenant_id,
                deployment=dep.name, version=dep.version, forecast=fc,
                reason=reason, degraded_source="stale_cache")
        fdep = self._fallback_for(dep)
        if fdep is not None:
            fsvc = fdep.service
            decision = self.admission.admit(
                fsvc.queue, tenant=tenant.tenant_id, deployment=fdep.name,
                deadline=deadline)
            if decision is None:
                frid = fsvc.submit(window, deadline=deadline)
                fkey = (cache_key(fdep.name, fdep.version, window)
                        if self.cache is not None else None)
                self._pending[(fdep.name, frid)] = _PendingRecord(
                    tenant_id=tenant.tenant_id, key=fkey, window=window,
                    deadline=deadline, ticket_deployment=fdep.name,
                    ticket_version=fdep.version, ticket_id=frid,
                    degraded_source=f"fallback:{fdep.name}")
                tenant.stats.admitted += 1
                self.stats.admitted += 1
                return GatewayResponse(
                    status="admitted", tenant=tenant.tenant_id,
                    deployment=fdep.name, version=fdep.version,
                    request_id=frid, reason=reason,
                    degraded_source=f"fallback:{fdep.name}")
        tenant.stats.failed += 1
        self.stats.failed += 1
        self.resilience.failed += 1
        return GatewayResponse(status="failed", tenant=tenant.tenant_id,
                               deployment=dep.name, version=dep.version,
                               reason=reason)

    def _maybe_hedge(self, tenant: Tenant, dep: Deployment,
                     rec: _PendingRecord, window: np.ndarray,
                     deadline: float | None, now: float) -> None:
        """Hedged re-dispatch: when the primary is healthy-but-slow and
        the deadline budget affords a duplicate, race the fallback.  The
        probe uses the projection directly (no shed record — a refused
        hedge is not a refused request)."""
        policy = self.resilience.policy
        if not policy.hedge:
            return
        if not self.resilience.breaker(dep.name).degraded():
            return
        fdep = self._fallback_for(dep)
        if fdep is None:
            return
        fsvc = fdep.service
        budget = float("inf") if deadline is None else deadline - now
        if (len(fsvc.queue) >= self.admission.max_queue_depth
                or self.admission.projected_latency(fsvc.queue, fdep.name)
                > budget):
            return
        frid = fsvc.submit(window, deadline=deadline)
        fkey = (cache_key(fdep.name, fdep.version, window)
                if self.cache is not None else None)
        twin = _PendingRecord(
            tenant_id=rec.tenant_id, key=fkey, window=window,
            deadline=deadline, ticket_deployment=rec.ticket_deployment,
            ticket_version=rec.ticket_version, ticket_id=rec.ticket_id,
            hedge=True, degraded_source=f"fallback:{fdep.name}",
            partner=(dep.name, rec.ticket_id))
        rec.partner = (fdep.name, frid)
        self._pending[(fdep.name, frid)] = twin
        self.resilience.hedges += 1

    def _degrade_failed(self, tenant: Tenant, dep: Deployment,
                        rec: _PendingRecord, *,
                        reason: str) -> GatewayResponse | None:
        """The ladder for an admitted request whose dispatch failed and
        whose retries are exhausted (or blocked by an open circuit).
        Returns a terminal response, or ``None`` when the request was
        re-routed to the fallback queue (its completion will arrive
        marked ``"degraded"`` under the original ticket)."""
        stale = self._stale_answer(rec.key)
        if stale is not None:
            tenant.stats.degraded += 1
            self.stats.degraded += 1
            self.resilience.degraded_stale += 1
            fc = Forecast(request_id=rec.ticket_id, predictions=stale,
                          latency=0.0, queue_wait=0.0, batch_size=0,
                          deadline_missed=False)
            return GatewayResponse(
                status="degraded", tenant=rec.tenant_id,
                deployment=rec.ticket_deployment,
                version=rec.ticket_version, request_id=rec.ticket_id,
                forecast=fc, reason=reason, degraded_source="stale_cache")
        fdep = self._fallback_for(dep)
        if fdep is not None:
            fsvc = fdep.service
            decision = self.admission.admit(
                fsvc.queue, tenant=rec.tenant_id, deployment=fdep.name,
                deadline=rec.deadline, retry=True)
            if decision is None:
                frid = fsvc.submit(rec.window, deadline=rec.deadline)
                rec.key = (cache_key(fdep.name, fdep.version, rec.window)
                           if self.cache is not None else None)
                rec.degraded_source = f"fallback:{fdep.name}"
                self._pending[(fdep.name, frid)] = rec
                return None
        tenant.stats.failed += 1
        self.stats.failed += 1
        self.resilience.failed += 1
        return GatewayResponse(
            status="failed", tenant=rec.tenant_id,
            deployment=rec.ticket_deployment, version=rec.ticket_version,
            request_id=rec.ticket_id, reason=reason)

    def _handle_failures(self, dep: Deployment) -> None:
        """Resolve dispatches that raised SessionFailure: per failed
        request, retry within the original deadline budget (charged
        through admission control), else walk the degradation ladder.
        Nothing is ever silently dropped."""
        svc = dep.service
        if svc is None:
            return
        failed = svc.take_failed()
        if not failed:
            return
        breaker = self.resilience.breaker(dep.name)
        policy = self.resilience.policy
        for reqs, _exc in failed:
            breaker.record_failure()
            for req in reqs:
                rec = self._pending.pop((dep.name, req.request_id), None)
                if rec is None:
                    continue
                if rec.canceled:
                    self.resilience.hedges_wasted += 1
                    continue
                if rec.partner is not None:
                    twin = self._pending.get(rec.partner)
                    if twin is not None and not twin.canceled:
                        # The hedge twin is still racing; it becomes the
                        # answer for this ticket.
                        twin.partner = None
                        continue
                tenant = self.tenants.get(rec.tenant_id)
                if (rec.retries < policy.max_retries
                        and breaker.before_request() == CLOSED):
                    decision = self.admission.admit(
                        svc.queue, tenant=rec.tenant_id,
                        deployment=dep.name, deadline=rec.deadline,
                        retry=True)
                    if decision is None:
                        nrid = svc.submit(rec.window, deadline=rec.deadline)
                        rec.retries += 1
                        self._pending[(dep.name, nrid)] = rec
                        self.resilience.retries += 1
                        continue
                resp = self._degrade_failed(tenant, dep, rec,
                                            reason="session_failure")
                if resp is not None:
                    self._completed.append(resp)

    def request(self, api_key: str, deployment: str,
                window: np.ndarray | None = None, *,
                deadline: float | None = None) -> GatewayResponse:
        """Synchronous request: submit, then force the deployment's queue
        through (coalescing with anything pending) and return this
        request's completed response.  Other requests' completions stay
        buffered for :meth:`poll`/:meth:`flush`."""
        resp = self.submit(api_key, deployment, window, deadline=deadline)
        if resp.status != "admitted":
            return resp
        target = (resp.deployment, resp.request_id)

        def find() -> GatewayResponse | None:
            for i, r in enumerate(self._completed):
                if (r.deployment, r.request_id) == target:
                    return self._completed.pop(i)
            return None

        self._drain_deployment(self.deployments.get(resp.deployment),
                               force=True)
        found = find()
        if found is not None:
            return found
        # Recovery may have bounced the request to another queue (retry
        # or fallback re-route); widen the drain until it lands.
        for _ in range(64):
            for dep in self.deployments.deployments():
                self._drain_deployment(dep, force=True)
            found = find()
            if found is not None:
                return found
            if not any(d.service is not None and len(d.service.queue)
                       for d in self.deployments.deployments()):
                break
        raise RuntimeError(                                # pragma: no cover
            f"request {resp.request_id} never completed")

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _absorb(self, dep: Deployment, forecasts: list[Forecast]) -> None:
        """Attribute completed forecasts to tenants, fill the cache, and
        buffer the responses for the next poll.  Completions report the
        request's original ticket identity, even when recovery moved it
        between queues."""
        for fc in forecasts:
            rec = self._pending.pop((dep.name, fc.request_id), None)
            if rec is None:
                continue            # e.g. a canary probe's side traffic
            if rec.canceled:
                self.resilience.hedges_wasted += 1
                continue
            hedged = rec.partner is not None
            if hedged:
                twin = self._pending.get(rec.partner)
                if twin is not None:
                    twin.canceled = True
            tenant = self.tenants.get(rec.tenant_id)
            tenant.stats.completed += 1
            tenant.stats.deadline_misses += int(fc.deadline_missed)
            self.stats.completed += 1
            if self.cache is not None and rec.key is not None:
                self.cache.put(rec.key, fc.predictions)
                injector = self.resilience.injector(dep.name)
                if injector is not None:
                    injector.maybe_corrupt(self.cache, rec.key)
            status = "ok"
            if rec.degraded_source:
                status = "degraded"
                tenant.stats.degraded += 1
                self.stats.degraded += 1
                self.resilience.degraded_fallback += 1
            self._completed.append(GatewayResponse(
                status=status, tenant=rec.tenant_id,
                deployment=rec.ticket_deployment,
                version=rec.ticket_version, request_id=rec.ticket_id,
                forecast=fc, degraded_source=rec.degraded_source,
                hedged=hedged))

    def _drain_deployment(self, dep: Deployment, *, force: bool) -> None:
        svc = dep.service
        if svc is None:
            return
        batches0 = svc.stats.batches
        busy0 = svc.stats.busy_seconds
        failed0 = svc.stats.failed_batches
        self._absorb(dep, svc.flush() if force else svc.poll())
        dispatched = svc.stats.batches - batches0
        if dispatched:
            mean = (svc.stats.busy_seconds - busy0) / dispatched
            self.admission.observe(dep.name, mean)
            breaker = self.resilience.breaker(dep.name)
            now = self.clock()
            # Successful batches first, failures after: a crashed session
            # stays down until restarted, so within one drain failures
            # are always the suffix.
            for _ in range(dispatched - (svc.stats.failed_batches
                                         - failed0)):
                breaker.record_success(mean, now)
        self._handle_failures(dep)

    def poll(self) -> list[GatewayResponse]:
        """Dispatch every due batch on every deployment; returns (and
        drains) newly completed responses."""
        for dep in self.deployments.deployments():
            self._drain_deployment(dep, force=False)
        done, self._completed = self._completed, []
        return done

    def flush(self) -> list[GatewayResponse]:
        """Force-dispatch everything pending on every deployment.

        Failure recovery can requeue work mid-drain (retries, fallback
        re-routes), so the drain loops until every queue is empty; the
        loop is bounded because retries are budgeted and circuits open.
        """
        for _ in range(64):
            for dep in self.deployments.deployments():
                self._drain_deployment(dep, force=True)
            if not any(d.service is not None and len(d.service.queue)
                       for d in self.deployments.deployments()):
                break
        done, self._completed = self._completed, []
        return done

    def time_until_ready(self) -> float | None:
        """Seconds until the earliest coalescing timer fires across all
        deployments (0 when a batch is ready now, ``None`` when every
        queue is empty) — the load generator's event-driven hook."""
        times = [dep.service.queue.time_until_ready()
                 for dep in self.deployments.deployments()
                 if dep.service is not None]
        times = [t for t in times if t is not None]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Blue-green swap
    # ------------------------------------------------------------------
    def swap(self, deployment: str, source: Any, *,
             version: str) -> SwapRecord | RollbackRecord:
        """Atomically swap ``deployment`` to a new checkpoint ``version``.

        The blue queue drains first (its completions are delivered to
        their tenants at the next poll — zero dropped in-flight
        requests), then the service flips to the green session and the
        deployment's cache entries are invalidated.  Before green takes
        traffic it must pass canary health checks (replays of recently
        served windows); a failing canary auto-rolls the deployment back
        to the blue session and returns the :class:`RollbackRecord`
        instead of the swap record — again with zero dropped requests.
        """
        dep = self.deployments.get(deployment).warm()
        blue_session = dep.service.session
        blue_version, blue_source = dep.version, dep.source
        svc = dep.service
        batches0 = svc.stats.batches
        busy0 = svc.stats.busy_seconds
        record, drained = dep.swap(source, version=version)
        self._absorb(dep, drained)
        svc = dep.service
        dispatched = svc.stats.batches - batches0
        if dispatched:
            self.admission.observe(
                dep.name, (svc.stats.busy_seconds - busy0) / dispatched)
        self._handle_failures(dep)
        if self.cache is not None:
            self.cache.invalidate(dep.name)
        self.stats.swaps += 1
        rollback = self._canary_check(dep, blue_session, blue_version,
                                      blue_source)
        if rollback is not None:
            return rollback
        return record

    def _canary_check(self, dep: Deployment, blue_session: Any,
                      blue_version: str,
                      blue_source: Any) -> RollbackRecord | None:
        """Health-check a freshly swapped green session by replaying
        recently served windows; roll back to blue when it fails."""
        probes = self.resilience.policy.canary_probes
        windows = list(dep.recent_windows)[-probes:] if probes else []
        if not windows:
            return None
        svc = dep.service
        probes_run, reason = 0, None
        for w in windows:
            probes_run += 1
            try:
                if svc.fault_injector is not None:
                    svc.fault_injector.on_dispatch(1)
                x = svc.session.stage(1)
                x[0] = w
                preds = svc.session.predict(x)
            except SessionFailure:
                reason = "session_failure"
            else:
                if not np.all(np.isfinite(preds)):
                    reason = "non_finite"
            if (svc.service_time is not None
                    and isinstance(self.clock, ManualClock)):
                self.clock.advance(svc.service_time(1))
            if reason is not None:
                break
        if reason is None:
            return None
        dropped = len(svc.queue)    # the swap drained it: 0
        failed_version = dep.version
        dep.rollback(blue_session, version=blue_version,
                     source=blue_source)
        if self.cache is not None:
            self.cache.invalidate(dep.name)
        record = RollbackRecord(
            deployment=dep.name, failed_version=failed_version,
            restored_version=blue_version, reason=reason,
            probes_run=probes_run, dropped=dropped, at=self.clock())
        self.resilience.rollbacks.append(record)
        self.stats.rollbacks += 1
        return record

    # ------------------------------------------------------------------
    # Thread-pooled stdlib dispatch (real-clock mode)
    # ------------------------------------------------------------------
    def handle_concurrent(self, requests: list[dict], *,
                          max_workers: int = 8) -> list[GatewayResponse]:
        """Serve many requests concurrently through a stdlib thread pool.

        Each element of ``requests`` is keyword arguments for
        :meth:`submit` (``api_key``, ``deployment``, optional ``window``
        and ``deadline``).  On a real clock the requests are submitted
        from pool threads (micro-batching coalesces whatever lands in the
        same ``max_wait``) and each thread waits for its own completion;
        on a :class:`ManualClock` the pool degenerates to deterministic
        submission order, since simulated time cannot advance
        concurrently.  Responses come back in request order either way.
        """
        requests = list(requests)
        if isinstance(self.clock, ManualClock):
            responses = [self.submit(**kw) for kw in requests]
            done = {(r.deployment, r.request_id): r for r in self.flush()}
            return [done.get((r.deployment, r.request_id), r)
                    if r.status == "admitted" else r for r in responses]

        from concurrent.futures import ThreadPoolExecutor

        ready: dict[tuple[str, int], GatewayResponse] = {}

        def one(kw: dict) -> GatewayResponse:
            with self._lock:
                resp = self.submit(**kw)
            if resp.status != "admitted":
                return resp
            key = (resp.deployment, resp.request_id)
            while True:
                with self._lock:
                    if key in ready:
                        return ready.pop(key)
                    for r in self.poll():
                        ready[(r.deployment, r.request_id)] = r
                    if key in ready:
                        return ready.pop(key)
                time.sleep(1e-4)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(one, requests))

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """One introspection dict: gateway, deployments, tenants, cache."""
        return {
            "stats": self.stats.to_dict(),
            "deployments": self.deployments.describe(),
            "tenants": self.tenants.per_tenant_stats(),
            "auth_failures": self.tenants.auth_failures,
            "shed_by_reason": self.admission.shed_by_reason(),
            "shed_by_tenant": self.admission.shed_by_tenant(),
            "cache": (self.cache.stats.to_dict()
                      if self.cache is not None else None),
            "resilience": self.resilience.describe(),
        }
