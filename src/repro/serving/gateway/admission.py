"""Admission control: reject requests whose deadline is already lost.

The :class:`~repro.serving.queue.MicroBatchQueue` embodies the Clipper
batching/latency trade-off but never *enforces* it — under overload it
just queues, and every latency (and deadline miss) grows without bound.
The admission controller closes that gap at the front door: before a
request is enqueued it **projects** the completion time from the current
queue depth, the coalescing timer, and a running per-batch service-time
estimate, and sheds the request when the projection blows its deadline
(or when the queue has hit a hard depth cap).  Shedding at admission
converts unbounded queueing collapse into bounded goodput loss — the
requests that *are* admitted still meet their deadlines.

The projection model (all quantities on the shared clock)::

    batches_ahead = floor(depth / max_batch)     # full batches before ours
    wait          = coalescing delay of the batch we would join
    finish        = now + wait + (batches_ahead + 1) * est_batch_seconds

``est_batch_seconds`` is an EWMA over observed dispatches (seeded from
the service's synthetic ``service_time`` model when one is configured,
so simulated runs shed deterministically from the first request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ShedDecision:
    """One rejected request, recorded for per-tenant accounting."""

    tenant: str
    deployment: str
    reason: str                 # "deadline" | "capacity"
    at: float                   # clock time of the decision
    queue_depth: int
    projected_latency: float    # seconds the projection promised
    deadline_budget: float      # seconds the request allowed (inf if none)
    retry: bool = False         # a failed-dispatch retry, not a new arrival


class AdmissionController:
    """Deadline-projection + depth-cap admission for one gateway.

    Parameters
    ----------
    clock:
        the gateway clock (shared with queues and cache).
    max_queue_depth:
        hard cap on pending requests per deployment; arrivals past it are
        shed with reason ``"capacity"`` regardless of deadlines.
    ewma_alpha:
        smoothing for the per-deployment batch-service-time estimate
        (1.0 = latest observation wins, 0.0 = frozen prior).
    """

    def __init__(self, clock: Callable[[], float], *,
                 max_queue_depth: int = 256, ewma_alpha: float = 0.2):
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], "
                             f"got {ewma_alpha}")
        self.clock = clock
        self.max_queue_depth = int(max_queue_depth)
        self.ewma_alpha = float(ewma_alpha)
        self._est_batch_seconds: dict[str, float] = {}
        self.decisions: list[ShedDecision] = []

    # ------------------------------------------------------------------
    # Service-time estimation
    # ------------------------------------------------------------------
    def seed_estimate(self, deployment: str, batch_seconds: float) -> None:
        """Install a prior estimate (e.g. from a synthetic service-time
        model) so projections are meaningful before the first dispatch."""
        self._est_batch_seconds[str(deployment)] = float(batch_seconds)

    def observe(self, deployment: str, batch_seconds: float) -> None:
        """Fold one measured batch dispatch into the EWMA estimate."""
        deployment = str(deployment)
        prev = self._est_batch_seconds.get(deployment)
        if prev is None:
            self._est_batch_seconds[deployment] = float(batch_seconds)
        else:
            a = self.ewma_alpha
            self._est_batch_seconds[deployment] = \
                (1.0 - a) * prev + a * float(batch_seconds)

    def estimate(self, deployment: str) -> float:
        """Current per-batch service-time estimate (0.0 until anything is
        known — an optimistic prior that never sheds blind)."""
        return self._est_batch_seconds.get(str(deployment), 0.0)

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------
    def projected_latency(self, queue, deployment: str) -> float:
        """Seconds until a request submitted *now* would complete."""
        depth = len(queue)
        est = self.estimate(deployment)
        batches_ahead = depth // queue.max_batch
        if depth + 1 >= queue.max_batch:
            wait = 0.0          # our batch fills and fires immediately
        else:
            remaining = queue.time_until_ready()
            wait = queue.max_wait if remaining is None else remaining
        return wait + (batches_ahead + 1) * est

    def admit(self, queue, *, tenant: str, deployment: str,
              deadline: float | None,
              retry: bool = False) -> ShedDecision | None:
        """``None`` to admit, or the recorded :class:`ShedDecision`.

        Called with the deployment's queue *before* the request is
        enqueued; ``deadline`` is absolute clock time (``None`` = the
        request never sheds on projection, only on the depth cap).

        Retries of failed dispatches come back through here with
        ``retry=True`` and their *original* absolute deadline: the
        remaining budget has shrunk by the failed attempt, so a retry is
        charged against the same estimate as fresh traffic and overload
        still sheds honestly.
        """
        now = self.clock()
        depth = len(queue)
        projected = self.projected_latency(queue, deployment)
        budget = float("inf") if deadline is None else deadline - now
        if depth >= self.max_queue_depth:
            reason = "capacity"
        elif projected > budget:
            reason = "deadline"
        else:
            return None
        decision = ShedDecision(
            tenant=str(tenant), deployment=str(deployment), reason=reason,
            at=now, queue_depth=depth, projected_latency=float(projected),
            deadline_budget=float(budget), retry=bool(retry))
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    def shed_by_tenant(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.decisions:
            out[d.tenant] = out.get(d.tenant, 0) + 1
        return out

    def shed_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.decisions:
            out[d.reason] = out.get(d.reason, 0) + 1
        return out
