"""The synchronous :class:`ForecastService` facade.

One object ties the serving subsystem together: a session (local
:class:`~repro.serving.session.ModelSession` or
:class:`~repro.serving.sharding.ShardedSession`) does the model work, a
:class:`~repro.serving.queue.MicroBatchQueue` coalesces concurrent
requests, and the service stamps per-request latency/deadline accounting
on a shared clock.

Time is explicit: the service runs on a :class:`ManualClock` by default
(simulated request time, *measured* model-service time — every batch
forward advances the clock by its real wall-clock duration), which makes
queueing behaviour reproducible while keeping latency numbers honest.
Pass ``clock=time.perf_counter`` for fully wall-clock operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.serving.queue import ForecastRequest, MicroBatchQueue
from repro.utils.errors import SessionFailure, ShapeError


class ManualClock:
    """An explicitly-advanced clock (seconds).  Callable like
    ``time.perf_counter`` so queues and services share it."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clock cannot run backwards")
        self.now += seconds
        return self.now

    def advance_to(self, t: float) -> float:
        self.now = max(self.now, float(t))
        return self.now


@dataclass
class Forecast:
    """One completed forecast.

    ``predictions`` is ``[horizon, nodes]`` in original signal units when
    the session has a scaler (standardized units otherwise) — an owned
    copy, safe to retain.
    """

    request_id: int
    predictions: np.ndarray
    latency: float
    queue_wait: float
    batch_size: int
    deadline_missed: bool


@dataclass
class ServiceStats:
    """Aggregate accounting over a service's lifetime."""

    requests: int = 0
    batches: int = 0
    deadline_misses: int = 0
    busy_seconds: float = 0.0
    failures: int = 0           # requests whose dispatch raised SessionFailure
    failed_batches: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class ForecastService:
    """Synchronous online-forecast front door.

    ``forecast`` answers immediately (a batch of 1); ``submit`` +
    ``poll``/``flush`` run the micro-batched path.  Both return
    :class:`Forecast` records with per-request latency measured on the
    service clock.
    """

    def __init__(self, session: Any, *, max_batch: int | None = None,
                 max_wait: float = 0.005,
                 clock: Callable[[], float] | None = None,
                 service_time: Callable[[int], float] | None = None):
        self.session = session
        self.clock = clock if clock is not None else ManualClock()
        # Synthetic service-time model: seconds a batch of n requests costs
        # on the (manual) clock.  None = measure real wall time.  A fixed
        # model makes whole load-generator schedules bit-reproducible.
        self.service_time = service_time
        max_batch = session.max_batch if max_batch is None else int(max_batch)
        if max_batch > session.max_batch:
            raise ValueError(
                f"service max_batch {max_batch} exceeds the session's "
                f"staging capacity {session.max_batch}")
        self.queue = MicroBatchQueue(max_batch=max_batch, max_wait=max_wait,
                                     clock=self.clock)
        self.stats = ServiceStats()
        self._completed: list[Forecast] = []
        # Resilience hooks (repro.serving.resilience): the injector fires
        # planned session_crash/session_straggler events at dispatch
        # boundaries; failed batches are buffered for take_failed() so the
        # gateway can retry/degrade them — never silently dropped.
        self.fault_injector = None
        self.last_batch_seconds = 0.0
        self._failed: list[tuple[list[ForecastRequest], SessionFailure]] = []

    # ------------------------------------------------------------------
    # Observation ingestion (delegates to the session's store(s))
    # ------------------------------------------------------------------
    def ingest(self, values: np.ndarray, timestamp_minutes: float) -> None:
        self.session.ingest(values, timestamp_minutes)

    @property
    def failover_events(self) -> list:
        """Shard failovers the session has survived (empty for local
        sessions, which have no failover path)."""
        return list(getattr(self.session, "failover_events", ()))

    def _check_window(self, window: np.ndarray | None) -> np.ndarray | None:
        """Reject malformed windows at the door: a bad request must fail
        its own caller, never poison the micro-batch it would have been
        coalesced into (requests popped for a failed dispatch are gone)."""
        if window is None:
            return None
        window = np.asarray(window)
        expected = (self.session.horizon, self.session.num_nodes,
                    self.session.in_features)
        if window.shape != expected:
            raise ShapeError(f"expected a {expected} window, "
                             f"got {window.shape}")
        return window

    # ------------------------------------------------------------------
    # Immediate path
    # ------------------------------------------------------------------
    def forecast(self, window: np.ndarray | None = None, *,
                 deadline: float | None = None) -> Forecast:
        """Serve one request now: force-dispatch the queue (coalescing
        with anything already pending) and return this request's forecast.
        Other requests' completions stay buffered for ``poll``/``flush``.

        ``window=None`` forecasts from the session's current streamed
        state (requires attached feature stores).
        """
        req = self.queue.submit(self._check_window(window), deadline=deadline)
        while len(self.queue):
            self._dispatch(self.queue.next_batch(force=True))
        for i, fc in enumerate(self._completed):
            if fc.request_id == req.request_id:
                return self._completed.pop(i)
        for batch, exc in self._failed:
            if any(r.request_id == req.request_id for r in batch):
                raise SessionFailure(
                    f"request {req.request_id} failed: {exc}") from exc
        raise RuntimeError(f"request {req.request_id} never completed")

    def forecast_streamed(self) -> np.ndarray:
        """Forecast every sensor from the session's streamed state.

        Local sessions read their feature store; sharded sessions assemble
        per-shard inputs with halo exchange.  Returns ``[horizon, nodes]``
        in original units (standardized without a scaler); no queueing.
        """
        preds = self.session.forecast_current()
        if self.session.scaler is not None:
            return self.session.to_original_units(preds)
        return preds[..., 0].copy()

    # ------------------------------------------------------------------
    # Micro-batched path
    # ------------------------------------------------------------------
    def submit(self, window: np.ndarray | None = None, *,
               deadline: float | None = None) -> int:
        """Enqueue a request; returns its id.  Dispatches opportunistically
        when the queue fills (results wait for the next ``poll``/``flush``)."""
        req = self.queue.submit(self._check_window(window), deadline=deadline)
        self._dispatch_due()
        return req.request_id

    def _dispatch_due(self) -> None:
        while self.queue.ready():
            self._dispatch(self.queue.next_batch())

    def poll(self) -> list[Forecast]:
        """Dispatch every batch the coalescing policy says is due;
        returns (and drains) newly completed forecasts."""
        self._dispatch_due()
        done, self._completed = self._completed, []
        return done

    def flush(self) -> list[Forecast]:
        """Force-dispatch everything pending and drain completions."""
        while len(self.queue):
            self._dispatch(self.queue.next_batch(force=True))
        done, self._completed = self._completed, []
        return done

    def take_failed(self) -> list[tuple[list[ForecastRequest], SessionFailure]]:
        """Drain batches whose dispatch failed, as ``(requests, failure)``
        pairs in dispatch order.  Failed requests keep their windows, so
        a caller can resubmit or degrade them."""
        failed, self._failed = self._failed, []
        return failed

    # ------------------------------------------------------------------
    def _materialise(self, reqs: list[ForecastRequest]) -> np.ndarray:
        """Stack request windows directly into the session's staging
        buffer (``predict`` skips its staging copy for views of it); a
        ``None`` window means "the session's current streamed state"."""
        batch = self.session.stage(len(reqs))
        current = None
        for i, req in enumerate(reqs):
            if req.window is None:
                if current is None:
                    if not hasattr(self.session, "current_window"):
                        raise RuntimeError(
                            f"{type(self.session).__name__} does not expose "
                            "current_window(); submit explicit windows")
                    current = self.session.current_window()
                batch[i] = current
            else:
                batch[i] = req.window
        return batch

    def _dispatch(self, reqs: list[ForecastRequest]) -> list[Forecast]:
        if not reqs:
            return []
        failure = None
        injector = self.fault_injector
        t0 = time.perf_counter()
        try:
            if injector is not None:
                injector.on_dispatch(len(reqs))
            x = self._materialise(reqs)
            preds = self.session.predict(x)
        except SessionFailure as exc:
            failure = exc
        service_seconds = time.perf_counter() - t0
        if self.service_time is not None:
            service_seconds = float(self.service_time(len(reqs)))
        if injector is not None:
            service_seconds = injector.scale_service_time(service_seconds)
        if isinstance(self.clock, ManualClock):
            self.clock.advance(service_seconds)
        now = self.clock()
        self.stats.busy_seconds += service_seconds
        self.stats.batches += 1
        self.last_batch_seconds = service_seconds
        if failure is not None:
            # Charge the failed attempt honestly (the time passed, the
            # slot was burned) but buffer the requests instead of losing
            # them: the gateway decides retry / degrade / fail.
            for req in reqs:
                req.completed = now
            self.stats.failures += len(reqs)
            self.stats.failed_batches += 1
            self._failed.append((list(reqs), failure))
            return []
        out = []
        for i, req in enumerate(reqs):
            req.completed = now
            if self.session.scaler is not None:
                values = self.session.to_original_units(preds[i])
            else:
                values = preds[i, ..., 0].copy()
            fc = Forecast(request_id=req.request_id,
                          predictions=np.ascontiguousarray(values),
                          latency=req.latency, queue_wait=req.queue_wait,
                          batch_size=req.batch_size,
                          deadline_missed=req.deadline_missed)
            out.append(fc)
            self.stats.requests += 1
            self.stats.deadline_misses += int(req.deadline_missed)
        self._completed.extend(out)
        return out
