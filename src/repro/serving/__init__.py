"""``repro.serving``: the online forecast-serving subsystem.

Turns trained checkpoints into a queryable, instrumented service:

- :class:`~repro.serving.session.ModelSession` — a restored model behind
  persistent buffers, answering ``no_grad`` forwards.
- :class:`~repro.serving.cache.FeatureStore` — per-sensor sliding-window
  store that standardizes streaming observations exactly once.
- :class:`~repro.serving.queue.MicroBatchQueue` — request coalescing up
  to ``max_batch``/``max_wait`` with deadline accounting.
- :class:`~repro.serving.sharding.ShardedSession` — partitioned workers
  with owner routing and byte-accounted halo exchange.
- :class:`~repro.serving.service.ForecastService` — the synchronous
  facade tying session + queue + clock together.
- :class:`~repro.serving.loadgen.LoadGenerator` — reproducible closed-
  and open-loop load with p50/p95/p99 latency and QPS reporting.
- :mod:`repro.serving.gateway` — the multi-tenant front door: deployment
  registry with blue-green swaps, API-key auth + quotas, admission
  control with load shedding, and a TTL result cache
  (:class:`~repro.serving.gateway.Gateway`, driven per tenant by
  :class:`~repro.serving.loadgen.GatewayLoadGenerator`).
- :mod:`repro.serving.resilience` — self-healing for the gateway: per-
  deployment circuit breakers, seeded fault injection, deadline-budgeted
  retries/hedging, graceful degradation, and canary-gated blue-green
  rollback.

The declarative entry points live in ``repro.api``:
``serve(spec_or_checkpoint) -> ForecastService`` and
``build_gateway({name: source, ...}) -> Gateway``.
"""

from repro.serving.cache import FeatureStore
from repro.serving.loadgen import (
    GatewayLoadGenerator,
    LoadGenerator,
    LoadReport,
    TenantStream,
)
from repro.serving.queue import ForecastRequest, MicroBatchQueue
from repro.serving.service import Forecast, ForecastService, ManualClock, ServiceStats
from repro.serving.session import ModelSession
from repro.serving.sharding import (
    FailoverEvent,
    ShardedSession,
    ShardWorker,
    halo_nodes,
)
from repro.serving.gateway import (
    AdmissionController,
    AuthError,
    Deployment,
    DeploymentRegistry,
    Gateway,
    GatewayResponse,
    ResultCache,
    ShedDecision,
    SwapRecord,
    Tenant,
    TenantManager,
)
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitTransition,
    DeploymentFaultInjector,
    GatewayResilience,
    HealthMonitor,
    ResiliencePolicy,
    RollbackRecord,
)

__all__ = [
    "AdmissionController",
    "AuthError",
    "CircuitBreaker",
    "CircuitTransition",
    "Deployment",
    "DeploymentFaultInjector",
    "DeploymentRegistry",
    "FailoverEvent",
    "FeatureStore",
    "Forecast",
    "ForecastRequest",
    "ForecastService",
    "Gateway",
    "GatewayLoadGenerator",
    "GatewayResilience",
    "GatewayResponse",
    "HealthMonitor",
    "LoadGenerator",
    "LoadReport",
    "ManualClock",
    "MicroBatchQueue",
    "ModelSession",
    "ResiliencePolicy",
    "ResultCache",
    "RollbackRecord",
    "ServiceStats",
    "ShardWorker",
    "ShardedSession",
    "ShedDecision",
    "SwapRecord",
    "Tenant",
    "TenantManager",
    "TenantStream",
    "halo_nodes",
]
