"""``repro.serving``: the online forecast-serving subsystem.

Turns trained checkpoints into a queryable, instrumented service:

- :class:`~repro.serving.session.ModelSession` — a restored model behind
  persistent buffers, answering ``no_grad`` forwards.
- :class:`~repro.serving.cache.FeatureStore` — per-sensor sliding-window
  store that standardizes streaming observations exactly once.
- :class:`~repro.serving.queue.MicroBatchQueue` — request coalescing up
  to ``max_batch``/``max_wait`` with deadline accounting.
- :class:`~repro.serving.sharding.ShardedSession` — partitioned workers
  with owner routing and byte-accounted halo exchange.
- :class:`~repro.serving.service.ForecastService` — the synchronous
  facade tying session + queue + clock together.
- :class:`~repro.serving.loadgen.LoadGenerator` — reproducible closed-
  and open-loop load with p50/p95/p99 latency and QPS reporting.

The declarative entry point lives in ``repro.api``:
``serve(spec_or_checkpoint) -> ForecastService``.
"""

from repro.serving.cache import FeatureStore
from repro.serving.loadgen import LoadGenerator, LoadReport
from repro.serving.queue import ForecastRequest, MicroBatchQueue
from repro.serving.service import Forecast, ForecastService, ManualClock, ServiceStats
from repro.serving.session import ModelSession
from repro.serving.sharding import (
    FailoverEvent,
    ShardedSession,
    ShardWorker,
    halo_nodes,
)

__all__ = [
    "FailoverEvent",
    "FeatureStore",
    "Forecast",
    "ForecastRequest",
    "ForecastService",
    "LoadGenerator",
    "LoadReport",
    "ManualClock",
    "MicroBatchQueue",
    "ModelSession",
    "ServiceStats",
    "ShardWorker",
    "ShardedSession",
    "halo_nodes",
]
