"""Per-sensor sliding-window feature store for streaming observations.

Online serving receives one observation row per sampling interval (all
sensors' raw readings at one timestamp) and must materialise model input
windows ``[horizon, nodes, features]`` on demand.  The store keeps a ring
buffer of the last ``capacity`` rows **already augmented and
standardized** — the time-of-day channel is appended and the *training*
scaler applied once at ingest, never refitted — so window materialisation
is two slice copies and ingest touches each value exactly once.

The ingest arithmetic mirrors the offline index-batching pipeline
step-for-step (augment in float64, standardize in float64, round once to
the storage dtype), so a store fed the training stream reproduces
:class:`~repro.preprocessing.index_batching.IndexDataset` windows
bitwise — the cache-correctness test asserts exact equality.
"""

from __future__ import annotations

import numpy as np

from repro.preprocessing.scaler import StandardScaler
from repro.utils.errors import ShapeError

MINUTES_PER_DAY = 24 * 60


class FeatureStore:
    """Ring buffer of standardized observation rows.

    Parameters
    ----------
    scaler:
        the *fitted* training scaler; ingest applies it, never refits.
    num_nodes / raw_features:
        shape of one raw observation row.
    capacity:
        rows retained; must cover at least one model horizon.
    add_time_feature:
        append the fraction-of-day channel (traffic datasets do).
    dtype:
        storage dtype (float32 matches the training pipeline's
        ``store_dtype``).
    """

    def __init__(self, scaler: StandardScaler, *, num_nodes: int,
                 raw_features: int, capacity: int,
                 add_time_feature: bool = True, dtype=np.float32):
        if not scaler.fitted:
            raise ValueError("FeatureStore needs a fitted scaler; serving "
                             "never refits standardization statistics")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.scaler = scaler
        self.num_nodes = int(num_nodes)
        self.raw_features = int(raw_features)
        self.add_time_feature = bool(add_time_feature)
        self.num_features = self.raw_features + int(self.add_time_feature)
        if len(scaler.mean_) != self.num_features:
            raise ShapeError(
                f"scaler covers {len(scaler.mean_)} features but the store "
                f"row has {self.num_features} (raw {self.raw_features}"
                f"{' + time-of-day' if self.add_time_feature else ''})")
        self.capacity = int(capacity)
        self.dtype = np.dtype(dtype)
        self._ring = np.empty((self.capacity, self.num_nodes,
                               self.num_features), self.dtype)
        # Augment + standardize run in float64 (exactly like offline
        # preprocessing); the single rounding happens on the ring write.
        self._row64 = np.empty((self.num_nodes, self.num_features), np.float64)
        self._head = 0          # next write slot
        self._count = 0         # rows ingested (saturates at capacity)
        self.total_ingested = 0

    @classmethod
    def for_dataset(cls, dataset, scaler: StandardScaler, *,
                    capacity: int, dtype=np.float32) -> "FeatureStore":
        """A store shaped for one catalog dataset (traffic gains
        time-of-day, matching the offline pipelines)."""
        return cls(scaler, num_nodes=dataset.num_nodes,
                   raw_features=dataset.raw_features, capacity=capacity,
                   add_time_feature=dataset.spec.domain == "traffic",
                   dtype=dtype)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Rows currently available (≤ capacity)."""
        return self._count

    def ingest(self, values: np.ndarray, timestamp_minutes: float) -> None:
        """Append one observation row.

        ``values`` is ``[num_nodes, raw_features]`` raw readings;
        ``timestamp_minutes`` is minutes since midnight of day 0 (the
        dataset timestamp convention) and feeds the time-of-day channel.
        """
        values = np.asarray(values)
        if values.shape != (self.num_nodes, self.raw_features):
            raise ShapeError(
                f"expected [{self.num_nodes}, {self.raw_features}] raw row, "
                f"got {values.shape}")
        row = self._row64
        row[:, : self.raw_features] = values
        if self.add_time_feature:
            row[:, self.raw_features] = \
                (float(timestamp_minutes) % MINUTES_PER_DAY) / MINUTES_PER_DAY
        self.scaler.transform(row, out=row)
        np.copyto(self._ring[self._head], row, casting="same_kind")
        self._head = (self._head + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        self.total_ingested += 1

    def ingest_block(self, values: np.ndarray,
                     timestamps_minutes: np.ndarray) -> None:
        """Warm the store with ``[rows, num_nodes, raw_features]`` history."""
        values = np.asarray(values)
        timestamps = np.asarray(timestamps_minutes)
        if len(values) != len(timestamps):
            raise ShapeError("values and timestamps must align")
        for row, ts in zip(values, timestamps):
            self.ingest(row, float(ts))

    def window(self, horizon: int, out: np.ndarray | None = None) -> np.ndarray:
        """The latest ``horizon`` rows, oldest first:
        ``[horizon, num_nodes, num_features]``.

        Pass a preallocated ``out`` to make materialisation allocation-free
        (the serving path hands a slice of its staging buffer).
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if horizon > self._count:
            raise RuntimeError(
                f"store holds {self._count} rows, cannot materialise a "
                f"window of {horizon}; ingest more history first")
        shape = (horizon, self.num_nodes, self.num_features)
        if out is None:
            out = np.empty(shape, self.dtype)
        elif out.shape != shape:
            raise ShapeError(f"window out buffer must be {shape}, "
                             f"got {out.shape}")
        start = (self._head - horizon) % self.capacity
        first = min(horizon, self.capacity - start)
        out[:first] = self._ring[start: start + first]
        if first < horizon:
            out[first:] = self._ring[: horizon - first]
        return out

    @property
    def resident_nbytes(self) -> int:
        return self._ring.nbytes + self._row64.nbytes
