"""Neural-network building blocks on top of :mod:`repro.autograd`."""

from repro.nn.init import glorot_uniform, he_uniform, uniform_, zeros_
from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
)
from repro.nn.rnn import GRUCell
from repro.nn.attention import MultiHeadAttention

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "Sequential",
    "GRUCell",
    "MultiHeadAttention",
    "glorot_uniform",
    "he_uniform",
    "uniform_",
    "zeros_",
]
