"""Scaled-dot-product and multi-head attention (used by ST-LLM and A3T-GCN)."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 causal: bool = False) -> Tensor:
    """Attention over the second-to-last axis of ``k``/``v``.

    Shapes: ``q [..., Tq, d]``, ``k [..., Tk, d]``, ``v [..., Tk, dv]``.
    """
    d = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / float(np.sqrt(d)))
    if causal:
        tq, tk = scores.shape[-2], scores.shape[-1]
        mask = np.triu(np.ones((tq, tk), dtype=bool), k=1)
        neg = Tensor(np.full(scores.shape, -1e9, dtype=np.float32))
        scores = F.where(~mask, scores, neg)
    attn = F.softmax(scores, axis=-1)
    return attn @ v


class MultiHeadAttention(Module):
    """Multi-head self-attention over ``[batch, seq, dim]`` inputs."""

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 *, seed_name: str = "mha"):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.q_proj = Linear(dim, dim, seed_name=f"{seed_name}.q")
        self.k_proj = Linear(dim, dim, seed_name=f"{seed_name}.k")
        self.v_proj = Linear(dim, dim, seed_name=f"{seed_name}.v")
        self.out_proj = Linear(dim, dim, seed_name=f"{seed_name}.o")

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        out = scaled_dot_product_attention(q, k, v, causal=self.causal)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, self.dim)
        return self.out_proj(out)
