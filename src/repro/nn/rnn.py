"""Recurrent cells.

Only the GRU cell is needed: DCRNN replaces its matmuls with diffusion
convolutions (see :mod:`repro.models.dcrnn`), TGCN with graph convolutions,
and ST-LLM does not use recurrence at all.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.module import Module, Parameter
from repro.utils.seeding import new_rng


class GRUCell(Module):
    """Standard gated recurrent unit cell.

    Follows the PyTorch gate layout: reset/update gates from a fused affine
    map of ``[x, h]``, candidate from ``[x, r*h]``.
    """

    def __init__(self, input_size: int, hidden_size: int, *, seed_name: str = "gru"):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = new_rng("nn", seed_name, input_size, hidden_size)
        in_dim = input_size + hidden_size
        self.w_gates = Parameter(glorot_uniform(rng, in_dim, 2 * hidden_size))
        self.b_gates = Parameter(np.ones(2 * hidden_size, dtype=np.float32))
        self.w_cand = Parameter(glorot_uniform(rng, in_dim, hidden_size))
        self.b_cand = Parameter(zeros_((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = F.concat([x, h], axis=-1)
        gates = (xh @ self.w_gates + self.b_gates).sigmoid()
        r = gates[..., : self.hidden_size]
        u = gates[..., self.hidden_size:]
        cand_in = F.concat([x, r * h], axis=-1)
        c = (cand_in @ self.w_cand + self.b_cand).tanh()
        return F.gru_update(u, h, c)

    def init_hidden(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=np.float32))
