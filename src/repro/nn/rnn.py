"""Recurrent cells.

Only the GRU cell is needed: DCRNN replaces its matmuls with diffusion
convolutions (see :mod:`repro.models.dcrnn`), TGCN with graph convolutions,
and ST-LLM does not use recurrence at all.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.module import Module, Parameter
from repro.utils.seeding import new_rng


def gru_cell_step(gates, candidate, x: Tensor, h: Tensor,
                  hidden_size: int) -> Tensor:
    """One GRU recurrence, shared by GRUCell, DCGRUCell and TGCNCell.

    ``gates`` / ``candidate`` map a concatenated input to pre-activations
    (``2*hidden`` and ``hidden`` wide respectively) — a dense affine map
    for the plain cell, diffusion/graph convolutions for the ST variants.

    On backends advertising ``fused_gru`` the sigmoid/slice/tanh/blend
    elementwise tail runs through the fused kernel ops
    (:func:`repro.autograd.functional.gru_gates` /
    :func:`~repro.autograd.functional.gru_blend`); otherwise the original
    op composition is used, keeping the default NumPy path byte-for-byte
    identical to the seed semantics.
    """
    xh = F.concat([x, h], axis=-1)
    if kernels.active_backend().fused_gru:
        rh, u = F.gru_gates(gates(xh), h)
        return F.gru_blend(u, h, candidate(F.concat([x, rh], axis=-1)))
    g = gates(xh).sigmoid()
    r = g[..., :hidden_size]
    u = g[..., hidden_size:]
    cand = candidate(F.concat([x, r * h], axis=-1)).tanh()
    return F.gru_update(u, h, cand)


class GRUCell(Module):
    """Standard gated recurrent unit cell.

    Follows the PyTorch gate layout: reset/update gates from a fused affine
    map of ``[x, h]``, candidate from ``[x, r*h]``.
    """

    def __init__(self, input_size: int, hidden_size: int, *, seed_name: str = "gru"):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = new_rng("nn", seed_name, input_size, hidden_size)
        in_dim = input_size + hidden_size
        self.w_gates = Parameter(glorot_uniform(rng, in_dim, 2 * hidden_size))
        self.b_gates = Parameter(np.ones(2 * hidden_size, dtype=np.float32))
        self.w_cand = Parameter(glorot_uniform(rng, in_dim, hidden_size))
        self.b_cand = Parameter(zeros_((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return gru_cell_step(
            lambda t: t @ self.w_gates + self.b_gates,
            lambda t: t @ self.w_cand + self.b_cand,
            x, h, self.hidden_size)

    def init_hidden(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=np.float32))
