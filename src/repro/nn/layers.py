"""Core dense layers: Linear, LayerNorm, Embedding, Dropout, Sequential."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros_
from repro.nn.module import Module, Parameter
from repro.utils.seeding import new_rng


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 *, seed_name: str = "linear"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = new_rng("nn", seed_name, in_features, out_features)
        self.weight = Parameter(glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(zeros_((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(zeros_((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.weight + self.bias


class Embedding(Module):
    """Integer-indexed lookup table of shape ``[num_embeddings, dim]``."""

    def __init__(self, num_embeddings: int, dim: int, *, seed_name: str = "emb"):
        super().__init__()
        rng = new_rng("nn", seed_name, num_embeddings, dim)
        self.weight = Parameter(
            (rng.standard_normal((num_embeddings, dim)) * 0.02).astype(np.float32))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, *, seed_name: str = "dropout"):
        super().__init__()
        self.p = p
        self._rng = new_rng("nn", seed_name, p)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)
