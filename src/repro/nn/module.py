"""Module/Parameter abstractions (the analogue of ``torch.nn.Module``)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter registration and traversal.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are discovered automatically by ``parameters()`` /
    ``named_parameters()``.  ``training`` toggles behaviours such as dropout.
    """

    def __init__(self):
        self.training: bool = True

    # -- traversal -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        yield from self._named_parameters(prefix, seen)

    def _named_parameters(self, prefix: str, seen: set[int]):
        for key, value in vars(self).items():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield (f"{prefix}{key}", value)
            elif isinstance(value, Module):
                yield from value._named_parameters(f"{prefix}{key}.", seen)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_parameters(f"{prefix}{key}.{i}.", seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield (f"{prefix}{key}.{i}", item)
            elif isinstance(value, dict):
                for k, item in value.items():
                    if isinstance(item, Module):
                        yield from item._named_parameters(f"{prefix}{key}.{k}.", seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield (f"{prefix}{key}.{k}", item)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- state ----------------------------------------------------------
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, arr in state.items():
            p = params[name]
            if p.data.shape != arr.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{p.data.shape} vs {arr.shape}")
            p.data[...] = arr

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- call -------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def assert_inference_mode(module: Module) -> None:
    """Raise unless ``module`` is fully in inference mode.

    Inference mode means gradient recording is off (``no_grad``) *and*
    every submodule has ``training=False`` (``module.eval()``), so a
    forward pass can neither extend the autograd graph nor trip
    training-only behaviour (scheduled sampling, dropout).  Evaluation
    loops and the serving path call this before forwarding.
    """
    from repro.autograd.grad_mode import is_grad_enabled
    if is_grad_enabled():
        raise RuntimeError(
            "inference requires no_grad(): gradient recording is enabled, "
            "so this forward pass would silently extend the autograd graph")
    stale = [type(m).__name__ for m in module.modules() if m.training]
    if stale:
        raise RuntimeError(
            f"inference requires eval mode, but {len(stale)} module(s) still "
            f"have training=True (e.g. {stale[0]}); call model.eval() first")
