"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import DEFAULT_DTYPE


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Xavier/Glorot uniform init, the PyTorch default for linear-like layers."""
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def he_uniform(rng: np.random.Generator, fan_in: int,
               shape: tuple[int, ...]) -> np.ndarray:
    """Kaiming/He uniform init for ReLU stacks."""
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape).astype(DEFAULT_DTYPE)


def uniform_(rng: np.random.Generator, shape: tuple[int, ...],
             low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(DEFAULT_DTYPE)


def zeros_(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)
