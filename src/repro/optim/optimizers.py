"""First-order optimizers operating on :class:`~repro.nn.module.Parameter` lists.

All steady-state work here is allocation-free: gradient clipping computes
the norm with BLAS dot products on the raveled gradients (no float64 full
copies), ``zero_grad`` zeroes the persistent gradient buffers in place by
default, and ``SGD``/``Adam`` stage every update through one reusable
scratch buffer per parameter.  The in-place formulations execute the same
elementary operations in the same order as the original allocating code,
so parameter trajectories are reproduced to float precision.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    DCRNN training uses gradient clipping (the reference implementation clips
    at norm 5).  Returns the pre-clip norm.

    The per-tensor sum of squares comes from ``np.dot`` on the raveled
    gradient (BLAS, no temporaries).  If that reduction overflows the
    gradient dtype (exploding float32 gradients — exactly when clipping
    matters), the affected tensor falls back to the exact float64
    accumulation; the scalar total is always accumulated in float64.
    """
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        v = g.reshape(-1)
        sq = float(np.dot(v, v))
        if not math.isfinite(sq):
            sq = float(np.sum(v.astype(np.float64) ** 2))
        total += sq
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer: holds the parameter list and the current LR."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0
        self._scratch: list[np.ndarray | None] = [None] * len(self.params)

    def zero_grad(self, set_to_none: bool = False) -> None:
        """Reset gradients.

        By default existing gradient buffers are zeroed **in place**, so
        the next ``backward()`` accumulates into the same arrays instead
        of allocating fresh ones every step.  Pass ``set_to_none=True``
        to release the buffers instead (frees memory; the old default).
        """
        for p in self.params:
            if set_to_none:
                p.grad = None
            elif p.grad is not None:
                p.grad.fill(0.0)

    def step(self) -> None:
        raise NotImplementedError

    @staticmethod
    def _staging(bufs: list, i: int, p: Parameter) -> np.ndarray:
        """Persistent staging buffer from ``bufs[i]`` (lazily allocated)."""
        buf = bufs[i]
        if buf is None or buf.shape != p.data.shape or buf.dtype != p.data.dtype:
            buf = np.empty_like(p.data)
            bufs[i] = buf
        return buf

    def _scratch_for(self, i: int, p: Parameter) -> np.ndarray:
        return self._staging(self._scratch, i, p)


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            s = self._scratch_for(i, p)
            if self.weight_decay:
                # g += wd * p, staged through scratch; mutating p.grad is
                # fine — it is consumed by this step and zeroed next step.
                np.multiply(p.data, self.weight_decay, out=s)
                g += s
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            np.multiply(g, self.lr, out=s)
            p.data -= s


class Adam(Optimizer):
    """Adam with bias correction (the paper's default optimizer)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)
        self._scratch2: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            s = self._scratch_for(i, p)
            s2 = self._staging(self._scratch2, i, p)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s)
                g += s
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            m, v = self._m[i], self._v[i]
            # m = b1*m + (1-b1)*g ; v = b2*v + (1-b2)*g^2, all in place.
            m *= self.beta1
            np.multiply(g, 1.0 - self.beta1, out=s)
            m += s
            v *= self.beta2
            np.multiply(g, g, out=s)
            s *= 1.0 - self.beta2
            v += s
            # p -= lr * (m/bc1) / (sqrt(v/bc2) + eps), staged in s/s2 with
            # the exact operation order of the allocating formulation.
            np.divide(m, bc1, out=s)
            s *= self.lr
            np.divide(v, bc2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s /= s2
            p.data -= s

    def state_nbytes(self) -> int:
        """Bytes held by moment buffers (used by the memory model)."""
        return sum(a.nbytes for a in self._m if a is not None) + \
            sum(a.nbytes for a in self._v if a is not None)
