"""First-order optimizers operating on :class:`~repro.nn.module.Parameter` lists."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    DCRNN training uses gradient clipping (the reference implementation clips
    at norm 5).  Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float(np.sum(g.astype(np.float64) ** 2))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base optimizer: holds the parameter list and the current LR."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction (the paper's default optimizer)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_nbytes(self) -> int:
        """Bytes held by moment buffers (used by the memory model)."""
        return sum(a.nbytes for a in self._m if a is not None) + \
            sum(a.nbytes for a in self._v if a is not None)
