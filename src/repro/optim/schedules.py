"""Learning-rate schedules, including the linear-scaling rule.

Paper §5.3.3 notes that the MAE degradation with large global batches is
mitigated by learning-rate scaling (Goyal et al. / You et al.); we implement
linear scaling with warmup so the Figure 8 ablation can test it.
"""

from __future__ import annotations

from typing import Sequence

from repro.optim.optimizers import Optimizer


def scale_lr_linear(base_lr: float, world_size: int, base_world_size: int = 1) -> float:
    """Linear-scaling rule: LR grows proportionally to the global batch size."""
    if world_size < 1 or base_world_size < 1:
        raise ValueError("world sizes must be positive")
    return base_lr * (world_size / base_world_size)


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` once per epoch via :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Keeps the initial learning rate."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class MultiStepLR(LRScheduler):
    """Decay by ``gamma`` at each epoch in ``milestones`` (DCRNN reference
    uses milestones [20, 30, 40, 50] with gamma 0.1)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class LinearWarmupLR(LRScheduler):
    """Ramp from ``base_lr / world_size`` to the scaled LR over ``warmup_epochs``.

    This is the gradual-warmup strategy of Goyal et al. used with the linear
    scaling rule for large global batches.
    """

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 target_lr: float | None = None):
        super().__init__(optimizer)
        self.warmup_epochs = max(int(warmup_epochs), 0)
        self.target_lr = self.base_lr if target_lr is None else float(target_lr)
        self.start_lr = self.base_lr
        if self.warmup_epochs > 0:
            self.optimizer.lr = self.lr_at(0)

    def lr_at(self, epoch: int) -> float:
        if self.warmup_epochs == 0 or epoch >= self.warmup_epochs:
            return self.target_lr
        frac = epoch / self.warmup_epochs
        return self.start_lr + (self.target_lr - self.start_lr) * frac
