"""Optimizers, learning-rate schedules, loss functions and grad clipping."""

from repro.optim.losses import l1_loss, masked_mae_loss, mse_loss
from repro.optim.optimizers import SGD, Adam, Optimizer, clip_grad_norm
from repro.optim.schedules import (
    ConstantLR,
    LinearWarmupLR,
    MultiStepLR,
    scale_lr_linear,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "l1_loss",
    "mse_loss",
    "masked_mae_loss",
    "ConstantLR",
    "MultiStepLR",
    "LinearWarmupLR",
    "scale_lr_linear",
]
