"""Loss functions for sequence-to-sequence forecasting.

The paper reports MAE (its Figures 5/8, Tables 3/5) and MSE (Table 6); the
DCRNN reference trains with masked MAE so missing sensor readings (recorded
as zeros in PeMS) do not contribute to the loss.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, as_tensor


def l1_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    target = as_tensor(target, like=pred)
    return (pred - target).abs().mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target = as_tensor(target, like=pred)
    diff = pred - target
    return (diff * diff).mean()


def masked_mae_loss(pred: Tensor, target: Tensor,
                    null_value: float = 0.0) -> Tensor:
    """MAE over entries whose target differs from ``null_value``.

    Matches the DCRNN reference: the mask is normalised so the expected loss
    scale is independent of the missing-data rate.
    """
    target = as_tensor(target, like=pred)
    mask = (target.data != null_value).astype(pred.dtype)
    denom = mask.mean()
    if denom <= 0:
        # All entries missing: define the loss as zero.
        return (pred * 0.0).mean()
    weights = mask / denom
    return ((pred - target).abs() * weights).mean()
