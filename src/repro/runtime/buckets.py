"""Gradient bucketing: few large all-reduces instead of one per tensor.

DDP's gradient synchronisation cost has a per-operation latency term
(``2(p-1)·alpha`` for a ring all-reduce), so reducing each of a model's
dozens of parameter tensors individually pays that latency dozens of
times per step.  :class:`GradientBucketer` flattens parameter gradients
into persistent ``bucket_cap_mb``-capped flat buffers — the PR-2 buffer
discipline applied to communication — so a step issues one all-reduce
per bucket.

Buckets are laid out in **ready order**: reverse parameter-registration
order, which is the order backpropagation produces gradients (outputs
first), the same fusion heuristic PyTorch DDP uses.  Parameters are
grouped by dtype first (a bucket is one homogeneous flat array), so
bucketing is dtype-preserving end to end.

Packing/unpacking is pure data movement into preallocated buffers; the
reduction math happens in :mod:`repro.runtime.collectives`, elementwise
over ranks, so the bucket layout cannot change training numerics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BucketSlot:
    """One parameter's slice of a bucket buffer."""

    param_index: int          # index into the bucketer's parameter list
    offset: int               # flat offset within the bucket
    size: int                 # number of elements
    shape: tuple[int, ...]


@dataclass(frozen=True)
class BucketLayout:
    """One bucket: a dtype-homogeneous run of parameter slots."""

    slots: tuple[BucketSlot, ...]
    size: int                 # total elements
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


class GradientBucketer:
    """Maps a parameter list onto capped flat gradient buffers.

    Parameters
    ----------
    params:
        the parameter list whose ``.grad`` arrays are packed/unpacked;
        order must match between :meth:`pack` and :meth:`unpack` calls
        (trainers pass ``optimizer.params`` everywhere).
    bucket_cap_mb:
        soft capacity per bucket; a single parameter larger than the cap
        still gets its own bucket.
    ready_order:
        lay buckets out in reverse registration order (gradient-ready
        order).  ``False`` keeps registration order — useful for tests.
    """

    def __init__(self, params, *, bucket_cap_mb: float = 25.0,
                 ready_order: bool = True):
        if bucket_cap_mb <= 0:
            raise ValueError(f"bucket_cap_mb must be > 0, got {bucket_cap_mb}")
        self.params = list(params)
        if not self.params:
            raise ValueError("GradientBucketer got an empty parameter list")
        self.bucket_cap_bytes = int(bucket_cap_mb * (1 << 20))
        self.ready_order = ready_order

        order = range(len(self.params))
        if ready_order:
            order = reversed(order)
        buckets: list[BucketLayout] = []
        slots: list[BucketSlot] = []
        offset = 0
        dtype: np.dtype | None = None

        def flush():
            nonlocal slots, offset, dtype
            if slots:
                buckets.append(BucketLayout(tuple(slots), offset, dtype))
            slots, offset, dtype = [], 0, None

        for i in order:
            p = self.params[i]
            p_dtype = np.dtype(p.data.dtype)
            p_bytes = p.data.size * p_dtype.itemsize
            if slots and (p_dtype != dtype
                          or (offset * dtype.itemsize) + p_bytes
                          > self.bucket_cap_bytes):
                flush()
            if dtype is None:
                dtype = p_dtype
            slots.append(BucketSlot(i, offset, p.data.size, p.data.shape))
            offset += p.data.size
        flush()
        self.buckets: tuple[BucketLayout, ...] = tuple(buckets)

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self.buckets)

    def make_buffers(self) -> list[np.ndarray]:
        """One persistent flat buffer per bucket (caller owns the set)."""
        return [np.empty(b.size, b.dtype) for b in self.buckets]

    # ------------------------------------------------------------------
    def pack(self, params, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Write every parameter's gradient into the bucket buffers.

        ``params`` must parallel the constructor's list (same shapes and
        dtypes; typically the same objects, or a rank replica's).  A
        parameter with ``grad is None`` contributes zeros, matching the
        flat-concatenate semantics the trainers had before bucketing.
        Returns ``buffers`` for chaining.
        """
        self._check_buffers(buffers)
        for layout, buf in zip(self.buckets, buffers):
            for slot in layout.slots:
                dst = buf[slot.offset: slot.offset + slot.size]
                g = params[slot.param_index].grad
                if g is None:
                    dst.fill(0.0)
                else:
                    np.copyto(dst.reshape(slot.shape), g)
        return buffers

    def unpack(self, buffers: list[np.ndarray], params) -> None:
        """Write bucket contents back into each parameter's ``.grad``.

        Reuses an existing gradient buffer in place when shapes match,
        allocating only on first touch.
        """
        self._check_buffers(buffers)
        for layout, buf in zip(self.buckets, buffers):
            for slot in layout.slots:
                src = buf[slot.offset: slot.offset + slot.size]
                p = params[slot.param_index]
                if p.grad is None or p.grad.shape != slot.shape:
                    p.grad = src.reshape(slot.shape).copy()
                else:
                    np.copyto(p.grad, src.reshape(slot.shape))

    def _check_buffers(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != len(self.buckets):
            raise ValueError(f"expected {len(self.buckets)} bucket buffers, "
                             f"got {len(buffers)}")
        for layout, buf in zip(self.buckets, buffers):
            if buf.size != layout.size or buf.dtype != layout.dtype:
                raise ValueError(
                    f"bucket buffer mismatch: need size {layout.size} "
                    f"{layout.dtype}, got size {buf.size} {buf.dtype}")
