"""Pluggable rank-execution and communication fabrics (the transport layer).

A :class:`Transport` answers two questions for the layers above it:

1. **Where do ranks run?**  :meth:`Transport.run_ranks` executes one
   callable per rank — sequentially on the driver thread
   (:class:`SimTransport`), or on one persistent worker thread per rank
   (:class:`ThreadTransport`; NumPy releases the GIL, so rank steps
   overlap on real cores).
2. **What does communication cost?**  Collectives and point-to-point
   transfers are *charged* through :meth:`Transport.collective` /
   :meth:`Transport.p2p`: :class:`SimTransport` prices them with the
   :mod:`repro.cluster` alpha-beta cost models on per-rank
   :class:`~repro.profiling.clock.SimClock`\\ s (exactly the semantics the
   old ``SimCommunicator`` had), while :class:`ThreadTransport` records
   measured wall seconds.

The numeric *data movement* of a collective lives one layer up, in
:mod:`repro.runtime.collectives`, implemented once against this protocol;
the :class:`~repro.runtime.process_group.ProcessGroup` facade binds the
two together for trainers and serving.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.cluster.costmodel import CommCostModel
from repro.cluster.topology import ClusterTopology
from repro.profiling.clock import SimClock
from repro.utils.errors import CommunicatorError

#: Collective kinds a transport knows how to price.
COLLECTIVE_KINDS = ("allreduce", "reduce_scatter", "allgather", "broadcast")


@dataclass
class CommStats:
    """Aggregate traffic accounting, by category."""

    bytes_by_category: dict[str, int] = field(default_factory=dict)
    time_by_category: dict[str, float] = field(default_factory=dict)
    ops: int = 0

    def record(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None:
        self.bytes_by_category[category] = (
            self.bytes_by_category.get(category, 0) + int(nbytes))
        self.time_by_category[category] = (
            self.time_by_category.get(category, 0.0) + float(seconds))
        self.ops += ops

    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    def total_seconds(self) -> float:
        return sum(self.time_by_category.values())


@runtime_checkable
class Transport(Protocol):
    """What a communication fabric must provide.

    ``repeat`` on the charging methods scales time/bytes/ops by a constant
    in one call (a single float multiply, so charging ``n`` identical ops
    once is bitwise-equal to ``n * per_op_seconds``) — the performance
    model uses it to account a whole epoch without looping over steps.
    """

    world_size: int
    stats: CommStats

    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list: ...

    def advance_compute(self, rank: int, seconds: float) -> None: ...

    def collective(self, kind: str, nbytes: int, category: str, *,
                   record_bytes: int | None = None, repeat: int = 1,
                   measured_seconds: float = 0.0) -> None: ...

    def p2p(self, src: int, dst: int, nbytes: int, category: str, *,
            measured_seconds: float = 0.0) -> None: ...

    def contended_fetch(self, total_bytes: int, messages_per_rank: int,
                        category: str) -> None: ...

    def charge(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None: ...

    @property
    def now(self) -> float: ...

    def elapsed_breakdown(self) -> dict[str, float]: ...


def _check_rank(world_size: int, rank: int) -> None:
    if not 0 <= rank < world_size:
        raise CommunicatorError(
            f"rank {rank} out of range [0, {world_size})")


class SimTransport:
    """Simulated fabric: per-rank clocks + alpha-beta cost models.

    Preserves the original ``SimCommunicator`` semantics exactly: a
    collective synchronises every participant to ``max(rank clocks) +
    op_time`` (the straggler semantics of a blocking collective), and
    every charge records bytes per traffic category.
    """

    def __init__(self, world_size: int,
                 cost_model: CommCostModel | None = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.topology = (cost_model.topology if cost_model is not None
                         else ClusterTopology(world_size))
        if self.topology.world_size != world_size:
            raise CommunicatorError(
                "cost model topology does not match world size")
        self.cost = cost_model or CommCostModel(self.topology)
        self.clocks = [SimClock() for _ in range(world_size)]
        self.stats = CommStats()
        # Per-rank cumulative time attribution.
        self.compute_time = np.zeros(world_size)
        self.comm_time = np.zeros(world_size)

    # -- rank execution -------------------------------------------------
    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list:
        """Run ``fn(rank)`` for every rank, sequentially in rank order.

        Simulated time is charged explicitly via
        :meth:`advance_compute`, so there is nothing to overlap.
        """
        return [fn(rank) for rank in range(self.world_size)]

    def advance_compute(self, rank: int, seconds: float) -> None:
        """Charge local computation to a rank's clock."""
        _check_rank(self.world_size, rank)
        self.clocks[rank].advance(seconds)
        self.compute_time[rank] += seconds

    # -- charging -------------------------------------------------------
    def _sync_all(self, op_seconds: float, nbytes: int, category: str,
                  ops: int = 1) -> None:
        start = max(c.now for c in self.clocks)
        end = start + op_seconds
        for r, c in enumerate(self.clocks):
            self.comm_time[r] += end - c.now
            c.advance_to(end)
        self.stats.record(category, nbytes, op_seconds, ops)

    def collective_seconds(self, kind: str, nbytes: int) -> float:
        """Price one collective of ``kind`` moving ``nbytes`` per rank."""
        if kind == "allreduce":
            return self.cost.allreduce_time(nbytes)
        if kind == "reduce_scatter":
            return self.cost.reduce_scatter_time(nbytes)
        if kind == "allgather":
            return self.cost.allgather_time(nbytes)
        if kind == "broadcast":
            return self.cost.broadcast_time(nbytes)
        raise CommunicatorError(f"unknown collective kind {kind!r}")

    def collective(self, kind: str, nbytes: int, category: str, *,
                   record_bytes: int | None = None, repeat: int = 1,
                   measured_seconds: float = 0.0) -> None:
        seconds = self.collective_seconds(kind, nbytes)
        recorded = nbytes if record_bytes is None else record_bytes
        self._sync_all(seconds * repeat, recorded * repeat, category, repeat)

    def p2p(self, src: int, dst: int, nbytes: int, category: str, *,
            measured_seconds: float = 0.0) -> None:
        """Point-to-point pull; advances both endpoints' clocks."""
        _check_rank(self.world_size, src)
        _check_rank(self.world_size, dst)
        if src == dst or nbytes == 0:
            return
        dt = self.cost.p2p_time(
            nbytes, same_node=self.topology.same_node(src, dst))
        start = max(self.clocks[src].now, self.clocks[dst].now)
        end = start + dt
        for r in (src, dst):
            self.comm_time[r] += end - self.clocks[r].now
            self.clocks[r].advance_to(end)
        self.stats.record(category, nbytes, dt)

    def contended_fetch(self, total_bytes: int, messages_per_rank: int,
                        category: str) -> None:
        """All ranks fetch concurrently, contending on the shared fabric."""
        if total_bytes == 0:
            return
        dt = self.cost.contended_fetch_time(total_bytes, messages_per_rank)
        self._sync_all(dt, total_bytes, category)

    def charge(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None:
        """Record pre-priced traffic (used by the performance model)."""
        self._sync_all(seconds, nbytes, category, ops)

    # -- observation ----------------------------------------------------
    @property
    def now(self) -> float:
        """Simulated wall time of the slowest rank."""
        return max(c.now for c in self.clocks)

    def elapsed_breakdown(self) -> dict[str, float]:
        """Mean per-rank compute/comm split (the Fig. 7/9 bar segments)."""
        return {
            "compute": float(self.compute_time.mean()),
            "comm": float(self.comm_time.mean()),
            "wall": self.now,
        }


class MeasuredTransport:
    """Shared accounting base for fabrics that run on real hardware.

    The thread, process and socket fabrics all answer the *cost* half of
    the :class:`Transport` protocol the same way: communication is real
    data movement, so collectives/p2p record their bytes and measured
    wall seconds instead of simulated time, and :attr:`now` is the wall
    clock since construction.  Subclasses only decide *where ranks run*
    (:meth:`run_ranks`).
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.stats = CommStats()
        self.compute_time = np.zeros(world_size)
        self.comm_time = np.zeros(world_size)
        self._t0 = time.perf_counter()

    # -- rank execution -------------------------------------------------
    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list:
        raise NotImplementedError

    def advance_compute(self, rank: int, seconds: float) -> None:
        """Simulated-compute charges are meaningless on real fabrics.

        Accepted (and ignored) so trainers can charge unconditionally;
        measured per-rank time is attributed by :meth:`run_ranks`.
        """
        _check_rank(self.world_size, rank)

    # -- charging -------------------------------------------------------
    def collective(self, kind: str, nbytes: int, category: str, *,
                   record_bytes: int | None = None, repeat: int = 1,
                   measured_seconds: float = 0.0) -> None:
        if kind not in COLLECTIVE_KINDS:
            raise CommunicatorError(f"unknown collective kind {kind!r}")
        recorded = nbytes if record_bytes is None else record_bytes
        self.comm_time += measured_seconds / self.world_size
        self.stats.record(category, recorded * repeat,
                          measured_seconds, repeat)

    def p2p(self, src: int, dst: int, nbytes: int, category: str, *,
            measured_seconds: float = 0.0) -> None:
        _check_rank(self.world_size, src)
        _check_rank(self.world_size, dst)
        if src == dst or nbytes == 0:
            return
        self.stats.record(category, nbytes, measured_seconds)

    def contended_fetch(self, total_bytes: int, messages_per_rank: int,
                        category: str) -> None:
        if total_bytes == 0:
            return
        self.stats.record(category, total_bytes, 0.0)

    def charge(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None:
        self.stats.record(category, nbytes, seconds, ops)

    # -- observation ----------------------------------------------------
    @property
    def now(self) -> float:
        """Measured wall seconds since this transport was created."""
        return time.perf_counter() - self._t0

    def elapsed_breakdown(self) -> dict[str, float]:
        return {
            "compute": float(self.compute_time.mean()),
            "comm": float(self.comm_time.mean()),
            "wall": self.now,
        }


class ThreadTransport(MeasuredTransport):
    """Real-thread fabric: one persistent worker thread per rank.

    :meth:`run_ranks` dispatches each rank's callable to its worker and
    joins them all (barrier semantics).  The heavy NumPy kernels in a
    training step release the GIL, so on a multi-core machine rank steps
    genuinely overlap — the first actually-parallel multi-rank execution
    in this repository.  Communication is shared-memory data movement
    (performed by :mod:`repro.runtime.collectives`); this transport
    records its bytes and measured wall seconds instead of simulated
    time.

    Pass ``parallel=False`` (or call ``run_ranks(..., parallel=False)``)
    to force sequential rank execution — the baseline the distributed
    benchmark compares against.
    """

    def __init__(self, world_size: int, *, parallel: bool = True):
        super().__init__(world_size)
        self.parallel = bool(parallel)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.world_size,
                thread_name_prefix="repro-rank")
        return self._pool

    # -- rank execution -------------------------------------------------
    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list:
        """Run ``fn(rank)`` on every rank; join before returning.

        Results are ordered by rank.  A raising rank propagates its
        exception after all ranks have been joined, so no worker is left
        mid-step.
        """
        def timed(rank: int):
            t0 = time.perf_counter()
            try:
                return fn(rank)
            finally:
                self.compute_time[rank] += time.perf_counter() - t0

        if not (self.parallel and parallel) or self.world_size == 1:
            return [timed(rank) for rank in range(self.world_size)]
        futures = [self._ensure_pool().submit(timed, rank)
                   for rank in range(self.world_size)]
        # Two passes: wait for everything first (the join barrier), then
        # raise the lowest-rank failure with no rank still mid-step.  A
        # failed step also tears the worker pool down — otherwise the
        # rank threads outlive the exception with nobody left to call
        # shutdown(), and an interpreter exit blocks joining them.  The
        # pool is rebuilt lazily, so a recovered trainer can keep using
        # this transport.
        done = [f.exception() for f in futures]
        for exc in done:
            if exc is not None:
                self.shutdown()
                raise exc
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # best-effort; pools also die with the process
        try:
            self.shutdown()
        except Exception:
            pass
