"""Distributed execution runtime: transports, collectives, process groups.

Layering (bottom up):

- :mod:`repro.runtime.transport` — where ranks run and what
  communication costs (``SimTransport`` / ``ThreadTransport``).
- :mod:`repro.runtime.fabric` — real multi-interpreter fabrics:
  ``ProcessTransport`` (forked ranks, zero-copy shared-memory data
  plane) and ``SocketTransport`` (forked ranks over TCP frames).
- :mod:`repro.runtime.collectives` — ring/tree collectives implemented
  once against the :class:`Transport` protocol.
- :mod:`repro.runtime.buckets` — gradient bucketing for DDP all-reduce.
- :mod:`repro.runtime.process_group` — the :class:`ProcessGroup` facade
  trainers, serving and the performance model consume.
- :mod:`repro.runtime.faults` — deterministic fault injection
  (:class:`FaultPlan` schedules, :class:`FaultyTransport` wrapper) for
  the chaos test tier and recovery benchmarks.
"""

from repro.runtime.buckets import BucketLayout, BucketSlot, GradientBucketer
from repro.runtime.faults import (
    FaultEvent,
    FaultPlan,
    FaultyTransport,
    RankFailure,
)
from repro.runtime.collectives import (
    all_gather,
    all_reduce,
    barrier,
    broadcast,
    point_to_point,
    reduce_scatter,
)
from repro.runtime.fabric import ProcessTransport, SocketTransport
from repro.runtime.process_group import ProcessGroup, as_process_group
from repro.runtime.transport import (
    CommStats,
    MeasuredTransport,
    SimTransport,
    ThreadTransport,
    Transport,
)

__all__ = [
    "Transport",
    "SimTransport",
    "ThreadTransport",
    "MeasuredTransport",
    "ProcessTransport",
    "SocketTransport",
    "CommStats",
    "FaultEvent",
    "FaultPlan",
    "FaultyTransport",
    "RankFailure",
    "ProcessGroup",
    "as_process_group",
    "GradientBucketer",
    "BucketLayout",
    "BucketSlot",
    "all_reduce",
    "reduce_scatter",
    "all_gather",
    "broadcast",
    "point_to_point",
    "barrier",
]
