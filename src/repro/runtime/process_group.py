"""The :class:`ProcessGroup` facade: one distributed-execution handle.

Trainers, the serving shards and the performance model all talk to a
``ProcessGroup`` — collectives, point-to-point fetches, per-rank compute
charging, rank execution, and :class:`~repro.runtime.transport.CommStats`
traffic accounting by category — while the transport behind it decides
whether ranks are simulated (:meth:`ProcessGroup.sim`), real threads
(:meth:`ProcessGroup.threads`), forked processes on a shared-memory
data plane (:meth:`ProcessGroup.processes`) or forked processes over
TCP (:meth:`ProcessGroup.sockets`).  Method names match the historical
``SimCommunicator`` surface, so the deprecated shim in
:mod:`repro.distributed.comm` is nothing but a constructor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.costmodel import CommCostModel
from repro.runtime import collectives
from repro.runtime.transport import (
    CommStats,
    SimTransport,
    ThreadTransport,
    Transport,
)


class ProcessGroup:
    """World of ``world_size`` ranks bound to one transport.

    Collective arguments are *lists indexed by rank* (the in-process
    equivalent of each rank passing its local buffer).
    """

    def __init__(self, transport: Transport):
        self.transport = transport

    # -- constructors ---------------------------------------------------
    @classmethod
    def sim(cls, world_size: int,
            cost_model: CommCostModel | None = None) -> "ProcessGroup":
        """Simulated ranks priced by the cluster cost model."""
        return cls(SimTransport(world_size, cost_model))

    @classmethod
    def threads(cls, world_size: int, *,
                parallel: bool = True) -> "ProcessGroup":
        """Ranks on real threads; measured wall time, no simulation."""
        return cls(ThreadTransport(world_size, parallel=parallel))

    @classmethod
    def processes(cls, world_size: int, *, parallel: bool = True,
                  max_inflight: int | None = None) -> "ProcessGroup":
        """Ranks as forked processes; zero-copy shm data plane."""
        from repro.runtime.fabric import ProcessTransport
        return cls(ProcessTransport(world_size, parallel=parallel,
                                    max_inflight=max_inflight))

    @classmethod
    def sockets(cls, world_size: int, *, parallel: bool = True,
                host: str = "127.0.0.1", port: int = 0) -> "ProcessGroup":
        """Ranks as forked processes reporting over TCP frames."""
        from repro.runtime.fabric import SocketTransport
        return cls(SocketTransport(world_size, parallel=parallel,
                                   host=host, port=port))

    # -- introspection --------------------------------------------------
    @property
    def world_size(self) -> int:
        return self.transport.world_size

    @property
    def stats(self) -> CommStats:
        """Traffic accounting by category (gradient / data / metric / ...)."""
        return self.transport.stats

    @property
    def now(self) -> float:
        return self.transport.now

    def elapsed_breakdown(self) -> dict[str, float]:
        return self.transport.elapsed_breakdown()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(world_size={self.world_size}, "
                f"transport={type(self.transport).__name__})")

    # -- rank execution -------------------------------------------------
    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list:
        """Execute ``fn(rank)`` on every rank; results in rank order.

        ``parallel=False`` forces sequential execution even on a parallel
        transport (callers use it when per-rank closures share mutable
        state).
        """
        return self.transport.run_ranks(fn, parallel=parallel)

    def advance_compute(self, rank: int, seconds: float) -> None:
        """Charge local computation to a rank's clock."""
        self.transport.advance_compute(rank, seconds)

    # -- collectives ----------------------------------------------------
    def allreduce(self, arrays: list[np.ndarray], op: str = "mean",
                  category: str = "gradient") -> list[np.ndarray]:
        return collectives.all_reduce(self.transport, arrays, op, category)

    def reduce_scatter(self, arrays: list[np.ndarray], op: str = "mean",
                       category: str = "gradient") -> list[np.ndarray]:
        return collectives.reduce_scatter(self.transport, arrays, op,
                                          category)

    def allgather(self, arrays: list[np.ndarray],
                  category: str = "data") -> list[list[np.ndarray]]:
        return collectives.all_gather(self.transport, arrays, category)

    def broadcast(self, value: np.ndarray, root: int = 0,
                  category: str = "control") -> list[np.ndarray]:
        return collectives.broadcast(self.transport, value, root, category)

    def send(self, array: np.ndarray, src: int, dst: int,
             category: str = "data") -> np.ndarray:
        return collectives.point_to_point(self.transport, array, src, dst,
                                          category)

    def barrier(self) -> None:
        collectives.barrier(self.transport)

    # -- data plane -----------------------------------------------------
    def fetch(self, src: int, dst: int, nbytes: int,
              category: str = "data") -> None:
        """On-demand pull of ``nbytes`` from ``src``'s memory to ``dst``."""
        self.transport.p2p(src, dst, nbytes, category)

    def fetch_all(self, total_bytes: int, messages_per_rank: int,
                  category: str = "data") -> None:
        """All ranks fetch concurrently, contending on the shared fabric."""
        self.transport.contended_fetch(total_bytes, messages_per_rank,
                                       category)

    def charge(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None:
        """Record pre-priced traffic (the performance model's entry)."""
        self.transport.charge(category, nbytes, seconds, ops)


def as_process_group(comm, *, world_size: int | None = None) -> ProcessGroup:
    """Normalise anything comm-like into a :class:`ProcessGroup`.

    Accepts a ``ProcessGroup`` (returned as-is, including the deprecated
    ``SimCommunicator`` subclass), any object satisfying the
    :class:`Transport` protocol — third-party fabrics plug in here — or
    ``None`` with an explicit ``world_size`` (builds the default
    simulated group).
    """
    if isinstance(comm, ProcessGroup):
        return comm
    if isinstance(comm, Transport):
        return ProcessGroup(comm)
    if comm is None:
        if world_size is None:
            raise ValueError("need a world_size to build a default "
                             "ProcessGroup from None")
        return ProcessGroup.sim(world_size)
    raise TypeError(f"cannot interpret {type(comm).__name__} as a "
                    f"ProcessGroup; pass ProcessGroup.sim(...) / "
                    f".threads(...) or a Transport implementation")
