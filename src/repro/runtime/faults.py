"""Deterministic fault injection for the distributed runtime.

Production failures — crashed ranks, stragglers, lost messages, dead
serving workers — are random in the wild but must be *scheduled* in a
test: a :class:`FaultPlan` is a seeded, serializable list of
:class:`FaultEvent`\\ s, and :class:`FaultyTransport` wraps any
:class:`~repro.runtime.transport.Transport` to fire those events at the
fabric's own boundaries:

- ``rank_crash(step, rank)`` raises :class:`RankFailure` the moment the
  doomed rank touches the fabric at (or after) the scheduled global
  step — the trainer's recovery path catches it, restores the last
  checkpoint and replays.
- ``straggler(rank, slowdown)`` stretches the rank's compute charges; on
  :class:`~repro.runtime.transport.SimTransport` the blocking-collective
  semantics then make every rank wait for the slow one, exactly the
  tail-latency amplification real clusters see.
- ``message_delay``/``message_drop`` charge extra fabric time (a dropped
  message is modelled as a retransmit after a timeout, so data still
  arrives — numerics never change, only cost).
- ``worker_crash(shard, at_request)`` is consumed by the serving layer
  (:class:`~repro.serving.sharding.ShardedSession`), not the transport.
- ``session_crash``/``session_straggler``/``store_corruption`` target a
  named gateway *deployment* (``target``) and are consumed by the
  gateway's resilience layer (:mod:`repro.serving.resilience`): a
  session crash makes the deployment's dispatches raise
  :class:`~repro.utils.errors.SessionFailure` until it is restarted, a
  session straggler stretches its service times, and a store corruption
  flips bytes in one of its result-cache entries (which the cache's
  integrity fingerprint must then catch).

Every event fires deterministically, so a chaos run is exactly as
reproducible as a clean one — which is what lets the chaos tier assert
*bitwise-identical* recovery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.utils.errors import CommunicatorError
from repro.utils.seeding import new_rng

#: Event kinds a plan may schedule.  ``worker_crash`` and the
#: ``session_*``/``store_*`` kinds target the serving layer; everything
#: else is injected by :class:`FaultyTransport`.
FAULT_KINDS = ("rank_crash", "straggler", "message_delay", "message_drop",
               "worker_crash", "session_crash", "session_straggler",
               "store_corruption")

#: Kinds consumed by serving components rather than the transport.
SERVING_KINDS = ("worker_crash", "session_crash", "session_straggler",
                 "store_corruption")

#: Kinds consumed by the gateway resilience layer; ``target`` names the
#: deployment and ``step``/``until``/``request`` count its *dispatches*
#: (batches), not training steps.
GATEWAY_KINDS = ("session_crash", "session_straggler", "store_corruption")


class RankFailure(CommunicatorError):
    """A rank died mid-training (injected or real).

    Carries which rank crashed and the global step it was executing, so
    recovery code and reports can attribute the failure.
    """

    def __init__(self, rank: int, step: int):
        super().__init__(f"rank {rank} crashed at global step {step}")
        self.rank = rank
        self.step = step


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Field meaning depends on ``kind``:

    - ``rank_crash``: ``rank`` dies at global step ``step``.
    - ``straggler``: ``rank`` computes ``slowdown``x slower for steps in
      ``[step, until)`` (``until=None`` = forever).
    - ``message_delay``: collectives in ``category`` (``None`` = all)
      during ``[step, until)`` pay ``seconds`` extra fabric time each.
    - ``message_drop``: point-to-point sends in ``category`` during
      ``[step, until)`` are lost once and retransmitted after a
      ``seconds`` timeout.
    - ``worker_crash``: serving shard ``shard`` dies once
      ``requests_served`` reaches ``request``.
    - ``session_crash``: gateway deployment ``target``'s session dies at
      its ``request``-th batch dispatch (and stays dead until restarted).
    - ``session_straggler``: deployment ``target``'s dispatches in
      ``[step, until)`` (dispatch ordinals) take ``slowdown``x longer.
    - ``store_corruption``: the ``request``-th result-cache insertion for
      deployment ``target`` is corrupted in place after being stored.
    """

    kind: str
    step: int = 0
    until: int | None = None
    rank: int = 0
    slowdown: float = 1.0
    seconds: float = 0.0
    category: str | None = None
    shard: int = 0
    request: int = 0
    target: str = ""

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"one of {FAULT_KINDS}")
        if self.step < 0 or self.rank < 0 or self.shard < 0 or self.request < 0:
            raise ValueError(f"fault event fields must be >= 0: {self}")
        if self.until is not None and self.until <= self.step:
            raise ValueError(f"until must exceed step, got "
                             f"[{self.step}, {self.until})")
        if self.kind in ("straggler", "session_straggler") \
                and self.slowdown < 1.0:
            raise ValueError(f"straggler slowdown must be >= 1.0, "
                             f"got {self.slowdown}")
        if self.kind in ("message_delay", "message_drop") and self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.kind in GATEWAY_KINDS and not self.target:
            raise ValueError(f"{self.kind} events need target=<deployment "
                             f"name>: {self}")
        if any(c in self.target for c in ",=:"):
            raise ValueError(f"target may not contain ',', '=' or ':' "
                             f"(the compact-encoding delimiters), got "
                             f"{self.target!r}")

    # -- step-range helpers ---------------------------------------------
    def active_at(self, step: int) -> bool:
        """Whether a ranged event covers global ``step``."""
        return step >= self.step and (self.until is None or step < self.until)

    # -- compact string form (the ``RunSpec.faults`` encoding) ----------
    def encode(self) -> str:
        """``"kind:field=value,..."`` with only non-default fields."""
        parts = []
        for f in dataclasses.fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return self.kind + (":" + ",".join(parts) if parts else "")

    @classmethod
    def decode(cls, text: str) -> "FaultEvent":
        """Inverse of :meth:`encode`; raises ``ValueError`` on bad input."""
        kind, _, rest = str(text).partition(":")
        fields = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: dict = {"kind": kind}
        for item in filter(None, rest.split(",")):
            name, eq, raw = item.partition("=")
            if not eq or name not in fields or name == "kind":
                raise ValueError(f"bad fault event field {item!r} in {text!r}")
            if name in ("category", "target"):
                kwargs[name] = raw
            elif name == "until":
                kwargs[name] = None if raw == "None" else int(raw)
            elif name in ("slowdown", "seconds"):
                kwargs[name] = float(raw)
            else:
                kwargs[name] = int(raw)
        return cls(**kwargs)


class FaultPlan:
    """An immutable, serializable schedule of fault events.

    Builder methods return a *new* plan, so schedules compose by
    chaining::

        plan = (FaultPlan(seed=7)
                .rank_crash(step=3, rank=1)
                .straggler(rank=2, slowdown=3.0))
    """

    def __init__(self, events: tuple = (), *, seed: int | str = 0):
        self.events: tuple[FaultEvent, ...] = tuple(
            ev if isinstance(ev, FaultEvent) else FaultEvent(**ev)
            for ev in events)
        self.seed = seed

    # -- builders -------------------------------------------------------
    def _with(self, event: FaultEvent) -> "FaultPlan":
        return FaultPlan(self.events + (event,), seed=self.seed)

    def rank_crash(self, step: int, rank: int = 0) -> "FaultPlan":
        return self._with(FaultEvent("rank_crash", step=step, rank=rank))

    def straggler(self, rank: int, slowdown: float, *, start_step: int = 0,
                  end_step: int | None = None) -> "FaultPlan":
        return self._with(FaultEvent("straggler", step=start_step,
                                     until=end_step, rank=rank,
                                     slowdown=slowdown))

    def message_delay(self, seconds: float, *, category: str | None = None,
                      start_step: int = 0,
                      end_step: int | None = None) -> "FaultPlan":
        return self._with(FaultEvent("message_delay", step=start_step,
                                     until=end_step, seconds=seconds,
                                     category=category))

    def message_drop(self, timeout_seconds: float, *,
                     category: str | None = None, start_step: int = 0,
                     end_step: int | None = None) -> "FaultPlan":
        return self._with(FaultEvent("message_drop", step=start_step,
                                     until=end_step,
                                     seconds=timeout_seconds,
                                     category=category))

    def worker_crash(self, shard: int, at_request: int) -> "FaultPlan":
        return self._with(FaultEvent("worker_crash", shard=shard,
                                     request=at_request))

    def session_crash(self, deployment: str, *,
                      at_dispatch: int = 0) -> "FaultPlan":
        """Deployment ``deployment``'s session dies at its
        ``at_dispatch``-th batch (and every later one until restarted)."""
        return self._with(FaultEvent("session_crash", target=str(deployment),
                                     request=at_dispatch))

    def session_straggler(self, deployment: str, slowdown: float, *,
                          start_dispatch: int = 0,
                          end_dispatch: int | None = None) -> "FaultPlan":
        """Deployment ``deployment``'s dispatches in ``[start_dispatch,
        end_dispatch)`` take ``slowdown``x their normal service time."""
        return self._with(FaultEvent("session_straggler",
                                     target=str(deployment),
                                     step=start_dispatch, until=end_dispatch,
                                     slowdown=slowdown))

    def store_corruption(self, deployment: str, *,
                         at_insert: int = 0) -> "FaultPlan":
        """The ``at_insert``-th result-cache entry stored for
        ``deployment`` is corrupted in place after insertion."""
        return self._with(FaultEvent("store_corruption",
                                     target=str(deployment),
                                     request=at_insert))

    @classmethod
    def randomized(cls, seed: int | str, *, world: int, steps: int,
                   crashes: int = 1, stragglers: int = 1,
                   max_slowdown: float = 4.0) -> "FaultPlan":
        """A seeded random schedule (an MTBF draw made reproducible).

        Crash steps and straggler ranks/slowdowns are drawn from a
        dedicated RNG stream, so the same seed always yields the same
        chaos scenario.
        """
        if world < 1 or steps < 1:
            raise ValueError("world and steps must be >= 1")
        rng = new_rng("fault-plan", seed)
        plan = cls(seed=seed)
        for _ in range(crashes):
            plan = plan.rank_crash(step=int(rng.integers(steps)),
                                   rank=int(rng.integers(world)))
        for _ in range(stragglers):
            plan = plan.straggler(rank=int(rng.integers(world)),
                                  slowdown=1.0 + float(rng.random())
                                  * (max_slowdown - 1.0))
        return plan

    # -- views ----------------------------------------------------------
    def transport_events(self) -> list[tuple[int, FaultEvent]]:
        """(index, event) pairs the transport layer injects."""
        return [(i, ev) for i, ev in enumerate(self.events)
                if ev.kind not in SERVING_KINDS]

    def serving_events(self) -> list[tuple[int, FaultEvent]]:
        """(index, event) pairs the sharded serving layer consumes."""
        return [(i, ev) for i, ev in enumerate(self.events)
                if ev.kind == "worker_crash"]

    def gateway_events(self, deployment: str | None = None
                       ) -> list[tuple[int, FaultEvent]]:
        """(index, event) pairs the gateway resilience layer consumes,
        optionally filtered to one deployment ``target``."""
        return [(i, ev) for i, ev in enumerate(self.events)
                if ev.kind in GATEWAY_KINDS
                and (deployment is None or ev.target == str(deployment))]

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultPlan)
                and self.events == other.events and self.seed == other.seed)

    def __repr__(self) -> str:
        return (f"FaultPlan({[ev.encode() for ev in self.events]}, "
                f"seed={self.seed!r})")

    # -- serialisation --------------------------------------------------
    def to_spec(self) -> tuple[str, ...]:
        """Compact string tuple (the ``RunSpec.faults`` field)."""
        return tuple(ev.encode() for ev in self.events)

    @classmethod
    def from_spec(cls, spec, *, seed: int | str = 0) -> "FaultPlan":
        return cls(tuple(FaultEvent.decode(s) for s in spec), seed=seed)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "events": list(self.to_spec())}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls.from_spec(d.get("events", ()), seed=d.get("seed", 0))


class FaultyTransport:
    """Wrap any transport; inject a :class:`FaultPlan` at its boundaries.

    Satisfies the :class:`~repro.runtime.transport.Transport` protocol,
    so ``ProcessGroup(FaultyTransport(SimTransport(4), plan))`` drops
    into every trainer unchanged.  The trainer reports its global step
    through :meth:`begin_step` (see ``DDPTrainer``); crash events then
    fire inside the doomed rank's next compute charge — or, as a
    backstop, inside the next collective — raising :class:`RankFailure`.

    ``fired`` is the set of event indices that already triggered; a
    recovery loop carries it across restarts so a crash does not refire
    on the replayed steps (see
    :func:`repro.training.recovery.train_with_recovery`).
    """

    def __init__(self, inner, plan: FaultPlan, *,
                 fired: set | None = None):
        self.inner = inner
        self.plan = plan
        self.fired: set[int] = set(fired or ())
        self.dropped_messages = 0
        self._step = 0
        # The plan is immutable; snapshot its transport view once instead
        # of re-filtering it inside every hot-path charge.
        self._events = tuple(plan.transport_events())

    # -- fault triggers -------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Trainer hook: the global step about to execute."""
        self._step = int(step)
        inner_begin = getattr(self.inner, "begin_step", None)
        if inner_begin is not None:
            inner_begin(step)

    def _maybe_crash(self, rank: int | None) -> None:
        for i, ev in self._events:
            if (ev.kind == "rank_crash" and i not in self.fired
                    and self._step >= ev.step
                    and (rank is None or ev.rank == rank)):
                self.fired.add(i)
                raise RankFailure(ev.rank, self._step)

    def _delay_for(self, kind: str, category: str) -> float:
        total = 0.0
        for _, ev in self._events:
            if (ev.kind == kind and ev.active_at(self._step)
                    and ev.category in (None, category)):
                total += ev.seconds
        return total

    # -- Transport protocol ---------------------------------------------
    @property
    def world_size(self) -> int:
        return self.inner.world_size

    @property
    def stats(self):
        return self.inner.stats

    @property
    def now(self) -> float:
        return self.inner.now

    def elapsed_breakdown(self) -> dict[str, float]:
        return self.inner.elapsed_breakdown()

    def run_ranks(self, fn, *, parallel: bool = True) -> list:
        try:
            return self.inner.run_ranks(fn, parallel=parallel)
        except RankFailure as failure:
            # On a process-isolated fabric the crash fired in a child
            # whose copy of ``fired`` died with it; reconcile here so a
            # recovery loop does not refire the same event forever.
            for i, ev in self._events:
                if (ev.kind == "rank_crash" and i not in self.fired
                        and ev.rank == failure.rank
                        and self._step >= ev.step):
                    self.fired.add(i)
                    break
            raise

    def __getattr__(self, name: str):
        # Capability passthrough (attach_rank_buffers, isolated_ranks,
        # address, ...): trainers probe the transport with getattr, and
        # the wrapper must not mask what the wrapped fabric offers.
        return getattr(self.inner, name)

    def advance_compute(self, rank: int, seconds: float) -> None:
        self._maybe_crash(rank)
        for _, ev in self._events:
            if (ev.kind == "straggler" and ev.rank == rank
                    and ev.active_at(self._step)):
                seconds *= ev.slowdown
        self.inner.advance_compute(rank, seconds)

    def collective(self, kind: str, nbytes: int, category: str, *,
                   record_bytes: int | None = None, repeat: int = 1,
                   measured_seconds: float = 0.0) -> None:
        self._maybe_crash(None)
        delay = self._delay_for("message_delay", category)
        if delay:
            self.inner.charge(category, 0, delay, ops=0)
        self.inner.collective(kind, nbytes, category,
                              record_bytes=record_bytes, repeat=repeat,
                              measured_seconds=measured_seconds)

    def p2p(self, src: int, dst: int, nbytes: int, category: str, *,
            measured_seconds: float = 0.0) -> None:
        timeout = self._delay_for("message_drop", category)
        if timeout and src != dst and nbytes:
            # First copy lost; charge the retransmit timeout, then let the
            # retransmission itself move the bytes through the real fabric.
            self.dropped_messages += 1
            self.inner.charge(category, 0, timeout, ops=0)
        self.inner.p2p(src, dst, nbytes, category,
                       measured_seconds=measured_seconds)

    def contended_fetch(self, total_bytes: int, messages_per_rank: int,
                        category: str) -> None:
        delay = self._delay_for("message_delay", category)
        if delay:
            self.inner.charge(category, 0, delay, ops=0)
        self.inner.contended_fetch(total_bytes, messages_per_rank, category)

    def charge(self, category: str, nbytes: int, seconds: float,
               ops: int = 1) -> None:
        self.inner.charge(category, nbytes, seconds, ops)

    def shutdown(self) -> None:
        if hasattr(self.inner, "shutdown"):
            self.inner.shutdown()

    def __repr__(self) -> str:
        return (f"FaultyTransport({type(self.inner).__name__}, "
                f"{len(self.plan)} events, fired={sorted(self.fired)})")
