"""Collective operations, implemented once against :class:`Transport`.

Call convention: arguments are *lists indexed by rank* (the in-process
equivalent of each rank passing its local buffer), and every collective
returns per-rank results as independent copies.  Two invariants hold for
every transport:

- **Dtype-preserving** — the result dtype is the input dtype, never a
  promoted accumulator dtype.
- **Bitwise-deterministic in rank order** — reductions accumulate
  contributions in rank order ``0, 1, ..., p-1`` regardless of transport,
  thread scheduling, or bucket layout, so a fixed-seed training run
  produces the same bits on :class:`~repro.runtime.transport.SimTransport`
  and :class:`~repro.runtime.transport.ThreadTransport`.

Cost accounting is delegated to ``transport.collective(...)`` — the
simulated fabric prices the standard ring/tree algorithms (a ring
all-reduce moves ``2 (p-1)/p · n`` per rank, a ring reduce-scatter half
of that), the thread fabric records measured wall seconds.
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime.transport import Transport
from repro.utils.errors import CommunicatorError

REDUCE_OPS = ("mean", "sum", "max")


def _check_world_list(transport: Transport, values) -> None:
    if len(values) != transport.world_size:
        raise CommunicatorError(
            f"expected one value per rank ({transport.world_size}), "
            f"got {len(values)}")


def _reduce(arrays: list[np.ndarray], op: str) -> np.ndarray:
    """Element-wise reduction over ranks, accumulated in rank order."""
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise CommunicatorError(f"reduce shape mismatch: {shapes}")
    if op not in REDUCE_OPS:
        raise CommunicatorError(f"unsupported op {op!r}")
    stacked = np.stack(arrays, axis=0)
    if op == "mean":
        result = stacked.mean(axis=0)
    elif op == "sum":
        result = stacked.sum(axis=0)
    else:
        result = stacked.max(axis=0)
    return result.astype(arrays[0].dtype, copy=False)


def all_reduce(transport: Transport, arrays: list[np.ndarray],
               op: str = "mean", category: str = "gradient"
               ) -> list[np.ndarray]:
    """Element-wise reduce across ranks; every rank gets the result."""
    _check_world_list(transport, arrays)
    t0 = time.perf_counter()
    result = _reduce(arrays, op)
    out = [result.copy() for _ in range(transport.world_size)]
    transport.collective("allreduce", arrays[0].nbytes, category,
                         measured_seconds=time.perf_counter() - t0)
    return out


def reduce_scatter(transport: Transport, arrays: list[np.ndarray],
                   op: str = "mean", category: str = "gradient"
                   ) -> list[np.ndarray]:
    """Reduce across ranks, then hand rank ``r`` the ``r``-th chunk.

    Chunks partition the raveled reduced array as evenly as possible
    (``np.array_split`` semantics); together with :func:`all_gather` of
    the chunks this composes into an all-reduce, exactly like the ring
    algorithm the cost model prices.
    """
    _check_world_list(transport, arrays)
    t0 = time.perf_counter()
    reduced = _reduce(arrays, op)
    chunks = [c.copy() for c in
              np.array_split(reduced.reshape(-1), transport.world_size)]
    transport.collective("reduce_scatter", arrays[0].nbytes, category,
                         measured_seconds=time.perf_counter() - t0)
    return chunks


def all_gather(transport: Transport, arrays: list[np.ndarray],
               category: str = "data") -> list[list[np.ndarray]]:
    """Every rank receives every rank's array (rank-ordered)."""
    _check_world_list(transport, arrays)
    t0 = time.perf_counter()
    per = max(a.nbytes for a in arrays)
    out = [[a.copy() for a in arrays] for _ in range(transport.world_size)]
    transport.collective("allgather", per, category,
                         record_bytes=per * transport.world_size,
                         measured_seconds=time.perf_counter() - t0)
    return out


def broadcast(transport: Transport, value: np.ndarray, root: int = 0,
              category: str = "control") -> list[np.ndarray]:
    """Send ``value`` from ``root`` to every rank."""
    if not 0 <= root < transport.world_size:
        raise CommunicatorError(
            f"rank {root} out of range [0, {transport.world_size})")
    t0 = time.perf_counter()
    arr = np.asarray(value)
    out = [arr.copy() for _ in range(transport.world_size)]
    transport.collective("broadcast", arr.nbytes, category,
                         measured_seconds=time.perf_counter() - t0)
    return out


def point_to_point(transport: Transport, array: np.ndarray, src: int,
                   dst: int, category: str = "data") -> np.ndarray:
    """Send one array from ``src`` to ``dst``; returns ``dst``'s copy."""
    t0 = time.perf_counter()
    arr = np.asarray(array)
    out = arr.copy()
    transport.p2p(src, dst, arr.nbytes, category,
                  measured_seconds=time.perf_counter() - t0)
    return out


def barrier(transport: Transport) -> None:
    """Synchronise all ranks (priced as an 8-byte allreduce)."""
    transport.collective("allreduce", 8, "control", record_bytes=0)
