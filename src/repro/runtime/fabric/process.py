"""Process fabric: one forked interpreter per rank, shm data plane.

The data plane is zero-copy: :meth:`ProcessTransport.attach_rank_buffers`
re-backs each rank's :class:`~repro.runtime.buckets.GradientBucketer`
flat buffers (or any other per-rank output arrays) on a
:class:`~repro.runtime.fabric.shm.SharedArrayPool`, so a child rank's
``pack()`` writes land directly in memory the driver reduces from —
nothing is serialized or copied across the process boundary.  The
control plane is one :class:`~repro.runtime.fabric.shm.ShmRing` per
child carrying the rank's result/error frame with a seqlock-style
publish handshake.
"""

from __future__ import annotations

import weakref
from typing import Callable

from repro.runtime.fabric import framing
from repro.runtime.fabric.base import ChildHandle, ForkFabric, run_child
from repro.runtime.fabric.shm import SharedArrayPool, ShmRing
from repro.runtime.transport import _check_rank


def _destroy_pools(pools: list) -> None:
    while pools:
        pools.pop().destroy()


class _ProcessHandle(ChildHandle):
    def __init__(self, rank: int, proc, ring: ShmRing):
        super().__init__(rank, proc)
        self.ring = ring
        self._frames: list[bytes] = []

    def poll(self) -> None:
        self._frames += self.ring.drain()
        if self.proc.is_alive():
            return
        self.proc.join()
        self._frames += self.ring.drain()  # bytes published before death
        if self._frames:
            _, self.outcome = framing.decode(self._frames[-1])
        self.ring.destroy()
        self.finished = True

    def abandon(self) -> None:
        self.ring.destroy()


class ProcessTransport(ForkFabric):
    """Real-process fabric: one forked child per rank per step.

    Every rank owns a whole interpreter (no GIL sharing), so rank steps
    scale with physical cores.  Collectives stay centralized in the
    driver (:mod:`repro.runtime.collectives` reduces in rank order), so
    training curves are bitwise identical to the sim/thread fabrics.

    ``ring_capacity`` sizes the per-child result ring; frames larger
    than the ring still flow because the driver drains while children
    run.
    """

    def __init__(self, world_size: int, *, parallel: bool = True,
                 max_inflight: int | None = None,
                 ring_capacity: int = 1 << 16):
        super().__init__(world_size, parallel=parallel,
                         max_inflight=max_inflight)
        self.ring_capacity = int(ring_capacity)
        self._pools: list[SharedArrayPool] = []
        # Pools must be unlinked even if nobody calls shutdown() — the
        # finalizer runs at GC or interpreter exit, whichever is first.
        self._finalizer = weakref.finalize(self, _destroy_pools, self._pools)

    # -- data plane -----------------------------------------------------
    def attach_rank_buffers(self, rank: int, buffers: list) -> list:
        """Re-back per-rank output arrays on shared memory.

        The returned views alias one shared block: the forked child
        inherits the mapping and writes through it, so after
        :meth:`run_ranks` the driver reads the child's bytes in place.
        """
        _check_rank(self.world_size, rank)
        pool = SharedArrayPool(list(buffers))
        self._pools.append(pool)
        return list(pool.arrays)

    # -- control plane --------------------------------------------------
    def _spawn(self, rank: int, fn: Callable[[int], object]) -> ChildHandle:
        ring = ShmRing(self.ring_capacity)

        def child() -> None:  # pragma: no cover — runs in the forked child
            def deliver(outcome: tuple) -> None:
                ring.write_frame(framing.encode_object(outcome))
                ring.close_writer()
            run_child(rank, fn, deliver)

        # The fork start method runs ``child`` in the forked interpreter
        # directly — nothing (not even the closure) is pickled.
        proc = self._ctx.Process(target=child, name=f"repro-rank-{rank}",
                                 daemon=True)
        proc.start()
        return _ProcessHandle(rank, proc, ring)

    def shutdown(self) -> None:
        """Free the shared-memory pools (idempotent)."""
        _destroy_pools(self._pools)
