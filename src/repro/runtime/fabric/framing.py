"""Wire format shared by the shared-memory and socket fabrics.

A *frame* is a self-describing byte string:

``magic(4) | kind(1) | header_len(u32) | header(json) | payload``

- ``kind == ND``: payload is the raw C-order bytes of one ndarray; the
  header carries ``dtype`` (string) and ``shape`` (list).  Encoding and
  decoding are exact for every dtype — the payload is ``tobytes()``, so
  a round-trip is bitwise identical.
- ``kind == OBJ``: payload is a pickle of an arbitrary Python object
  (rank results, exceptions, control messages).

Streams (sockets, shm rings) carry frames behind a u64 length prefix via
:func:`write_frame` / :func:`read_frame`.
"""

from __future__ import annotations

import io
import json
import pickle
import struct

import numpy as np

from repro.utils.errors import CommunicatorError

#: Identifies a repro-fabric frame (and its version).
MAGIC = b"RFB1"

KIND_NDARRAY = 0x01
KIND_OBJECT = 0x02

_PREFIX = struct.Struct("<Q")  # u64 little-endian length prefix
_HEAD = struct.Struct("<4sBI")  # magic, kind, header_len


class FrameError(CommunicatorError):
    """A frame failed to parse (bad magic, truncation, unknown kind)."""


def encode_ndarray(arr: np.ndarray) -> bytes:
    """Encode one array as a self-describing frame (bitwise exact)."""
    arr = np.asarray(arr)
    shape = arr.shape  # before ascontiguousarray, which promotes 0-d to 1-d
    arr = np.ascontiguousarray(arr)
    header = json.dumps(
        {"dtype": arr.dtype.str, "shape": list(shape)},
        separators=(",", ":")).encode("ascii")
    return (_HEAD.pack(MAGIC, KIND_NDARRAY, len(header))
            + header + arr.tobytes())


def encode_object(obj: object) -> bytes:
    """Encode an arbitrary picklable object as a frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEAD.pack(MAGIC, KIND_OBJECT, 0) + payload


def decode(frame: bytes | memoryview) -> tuple[int, object]:
    """Decode one frame to ``(kind, value)``.

    ``value`` is an ndarray (owning its data — safe to keep after the
    backing buffer is reused) for ``KIND_NDARRAY`` frames, otherwise the
    unpickled object.
    """
    view = memoryview(frame)
    if len(view) < _HEAD.size:
        raise FrameError(f"frame truncated: {len(view)} bytes")
    magic, kind, header_len = _HEAD.unpack_from(view, 0)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    body = view[_HEAD.size:]
    if kind == KIND_NDARRAY:
        if len(body) < header_len:
            raise FrameError("ndarray frame header truncated")
        header = json.loads(bytes(body[:header_len]).decode("ascii"))
        dtype = np.dtype(header["dtype"])
        shape = tuple(header["shape"])
        payload = body[header_len:]
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if len(payload) != expected:
            raise FrameError(
                f"ndarray payload is {len(payload)} bytes, "
                f"expected {expected} for {dtype} {shape}")
        arr = np.frombuffer(bytes(payload), dtype=dtype).reshape(shape)
        return KIND_NDARRAY, arr
    if kind == KIND_OBJECT:
        return KIND_OBJECT, pickle.loads(bytes(body))
    raise FrameError(f"unknown frame kind 0x{kind:02x}")


def decode_ndarray(frame: bytes | memoryview) -> np.ndarray:
    kind, value = decode(frame)
    if kind != KIND_NDARRAY:
        raise FrameError("expected an ndarray frame")
    return value  # type: ignore[return-value]


class FrameAssembler:
    """Reassemble u64-length-prefixed frames from an arbitrary byte feed.

    Both consumers of chunked transports use this: the shm ring's driver
    side and the socket driver's non-blocking reads deliver bytes in
    whatever pieces arrive; :meth:`feed` buffers partials and returns
    only complete frames, in order.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes | memoryview) -> list[bytes]:
        self._buf += data
        frames: list[bytes] = []
        while len(self._buf) >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(self._buf, 0)
            if len(self._buf) < _PREFIX.size + length:
                break
            frames.append(bytes(self._buf[_PREFIX.size:_PREFIX.size + length]))
            del self._buf[:_PREFIX.size + length]
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


def prefixed(frame: bytes) -> bytes:
    """One frame behind its u64 length prefix (the stream encoding)."""
    return _PREFIX.pack(len(frame)) + frame


# -- length-prefixed streams (sockets, file-like pipes) -----------------

def write_frame(stream: io.RawIOBase, frame: bytes) -> None:
    """Write one frame behind a u64 length prefix."""
    stream.write(_PREFIX.pack(len(frame)))
    stream.write(frame)


def read_exact(stream: io.RawIOBase, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`EOFError`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(
                f"stream closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: io.RawIOBase) -> bytes:
    """Read one length-prefixed frame; :class:`EOFError` on clean close."""
    prefix = read_exact(stream, _PREFIX.size)
    (length,) = _PREFIX.unpack(prefix)
    return read_exact(stream, length)
