"""Shared machinery for fork-based rank fabrics.

Both real fabrics (:class:`~repro.runtime.fabric.process.ProcessTransport`
and :class:`~repro.runtime.fabric.tcp.SocketTransport`) execute a step
the same way: **fork one child per rank**, run the rank closure in the
child, and ship results back to the driver.  Forking per
:meth:`run_ranks` call — rather than keeping persistent workers — is
what makes arbitrary closures work (nothing is pickled to start a rank)
and what makes replicas trivial: the copy-on-write fork snapshot *is*
the per-rank replica, with parameters current by construction, so
checkpoint/resume and transport swaps need no parameter broadcast.

:class:`ForkFabric` owns wave scheduling (at most
:func:`~repro.hardware.usable_cores` children in flight), child-death
detection, and the join-then-raise-lowest-rank semantics that
:class:`~repro.runtime.transport.ThreadTransport` established.
Subclasses provide the channel a child reports through.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Callable

import multiprocessing

from repro.hardware.cores import usable_cores
from repro.runtime.faults import RankFailure
from repro.runtime.transport import MeasuredTransport, _check_rank
from repro.utils.errors import CommunicatorError

#: Exit code of a child that died by injected fault (frameless, like a
#: real crash) — any frameless death maps to :class:`RankFailure`, the
#: code just makes post-mortems readable.
CRASH_EXIT_CODE = 13


def run_child(rank: int, fn: Callable[[int], object],  # pragma: no cover
              deliver: Callable[[tuple], None]) -> None:
    # (no cover: executes only inside forked children, which coverage
    # tooling does not trace)
    """Rank-child mainline; never returns (exits the process).

    Runs ``fn(rank)`` and hands ``("ok", elapsed, result)`` or
    ``("err", elapsed, exc)`` to ``deliver``.  A :class:`RankFailure`
    (injected by a composed
    :class:`~repro.runtime.faults.FaultyTransport`) is *not* delivered:
    the child dies frameless, exactly the signature of a real crash, and
    the driver re-raises it from the silence.  Exits via ``os._exit`` so
    the forked interpreter never runs inherited cleanup handlers.
    """
    t0 = time.perf_counter()
    try:
        result = fn(rank)
        try:
            pickle.dumps(result)
        except Exception as exc:
            raise CommunicatorError(
                f"rank {rank} returned an unpicklable result "
                f"({type(result).__name__}): {exc}") from None
        outcome = ("ok", time.perf_counter() - t0, result)
    except RankFailure:
        os._exit(CRASH_EXIT_CODE)
    except BaseException as exc:  # noqa: BLE001 — must cross the boundary
        try:
            pickle.dumps(exc)
        except Exception:
            exc = CommunicatorError(
                f"rank {rank} raised unpicklable "
                f"{type(exc).__name__}: {exc}")
        outcome = ("err", time.perf_counter() - t0, exc)
    try:
        deliver(outcome)
    except BaseException:
        os._exit(CRASH_EXIT_CODE)
    os._exit(0)


class ChildHandle:
    """Driver-side view of one in-flight rank child."""

    def __init__(self, rank: int, proc):
        self.rank = rank
        self.proc = proc
        self.finished = False
        #: ``("ok"|"err", elapsed_seconds, payload)`` once the child
        #: reported; ``None`` if it died without a frame.
        self.outcome: tuple | None = None

    def poll(self) -> None:
        """Drain the channel; mark finished once the child is gone."""
        raise NotImplementedError

    def abandon(self) -> None:
        """Release the channel without reading a result (driver bailing)."""


class ForkFabric(MeasuredTransport):
    """Fork-per-step transport base (see module docstring).

    ``parallel=False`` (or ``run_ranks(..., parallel=False)``) runs
    ranks inline on the driver — the sequential baseline the distributed
    benchmark compares against, bitwise identical because all rank
    *data* movement is centralized either way.
    """

    #: Ranks execute in separate address spaces, so trainers may always
    #: run them concurrently — replicas can't race through shared state.
    isolated_ranks = True

    def __init__(self, world_size: int, *, parallel: bool = True,
                 max_inflight: int | None = None):
        super().__init__(world_size)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — non-POSIX
            raise CommunicatorError(
                "process/socket fabrics need the fork start method; "
                "this platform does not provide it") from exc
        self.parallel = bool(parallel)
        self.max_inflight = int(max_inflight or max(1, usable_cores()))
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._step = 0

    # -- trainer hooks --------------------------------------------------
    def begin_step(self, step: int) -> None:
        """Global step about to execute; attributed to frameless deaths."""
        self._step = int(step)

    def attach_rank_buffers(self, rank: int, buffers: list) -> list:
        """Adopt per-rank output arrays written inside the child.

        Returns replacement arrays the caller must use from now on;
        after :meth:`run_ranks`, child writes to them are visible in the
        driver.  Base implementation is a no-op passthrough.
        """
        _check_rank(self.world_size, rank)
        return list(buffers)

    # -- fabric hooks ---------------------------------------------------
    def _spawn(self, rank: int, fn: Callable[[int], object]) -> ChildHandle:
        raise NotImplementedError

    def _poll_fabric(self) -> None:
        """Per-iteration fabric work (e.g. accepting connections)."""

    # -- rank execution -------------------------------------------------
    def run_ranks(self, fn: Callable[[int], object], *,
                  parallel: bool = True) -> list:
        """Run ``fn(rank)`` for every rank; join before returning.

        Results are rank-ordered.  All ranks run to completion (in
        waves of at most ``max_inflight`` forked children) before the
        lowest-rank failure is raised; a child that dies without
        reporting becomes a :class:`RankFailure` at the current step.
        """
        if not (self.parallel and parallel) or self.world_size == 1:
            out = []
            for rank in range(self.world_size):
                t0 = time.perf_counter()
                try:
                    out.append(fn(rank))
                finally:
                    self.compute_time[rank] += time.perf_counter() - t0
            return out

        pending = list(range(self.world_size))
        inflight: dict[int, ChildHandle] = {}
        outcomes: dict[int, tuple | None] = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < self.max_inflight:
                    rank = pending.pop(0)
                    inflight[rank] = self._spawn(rank, fn)
                self._poll_fabric()
                progressed = False
                for rank, handle in list(inflight.items()):
                    handle.poll()
                    if handle.finished:
                        outcomes[rank] = handle.outcome
                        del inflight[rank]
                        progressed = True
                if inflight and not progressed:
                    time.sleep(0.0005)
        except BaseException:
            for handle in inflight.values():
                if handle.proc.is_alive():
                    handle.proc.terminate()
                handle.proc.join()
                handle.abandon()
            raise

        results: list = [None] * self.world_size
        failures: dict[int, BaseException] = {}
        for rank in range(self.world_size):
            outcome = outcomes[rank]
            if outcome is None:
                failures[rank] = RankFailure(rank, self._step)
                continue
            status, elapsed, payload = outcome
            self.compute_time[rank] += float(elapsed)
            if status == "ok":
                results[rank] = payload
            else:
                failures[rank] = payload
        if failures:
            raise failures[min(failures)]
        return results

    def shutdown(self) -> None:
        """Release fabric resources (idempotent; overridden as needed)."""
