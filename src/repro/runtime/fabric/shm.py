"""Shared-memory primitives for the process fabric.

Two building blocks, both backed by :class:`multiprocessing.shared_memory
.SharedMemory` and designed for *fork* children — the child inherits the
parent's mapping, so no name-based re-attach (or pickling) is needed:

- :class:`SharedArrayPool` re-backs a set of ndarrays onto one shared
  block.  The trainer's :class:`~repro.runtime.buckets.GradientBucketer`
  flat buffers live here: a child rank ``pack()``-ing gradients writes
  straight into memory the driver reduces from — zero copies cross the
  process boundary.
- :class:`ShmRing` is a single-producer single-consumer byte ring with a
  seqlock-style handshake: the producer writes payload bytes first, then
  publishes them by storing a monotonically increasing ``tail`` counter;
  the consumer reads up to ``tail`` and publishes consumption through
  ``head``.  Each counter has exactly one writer, so the
  publish-after-write ordering is the only fence the protocol needs (and
  what CPython's bytecode boundaries plus x86-TSO store ordering give
  us).  Rings carry the control plane: per-rank result / error frames.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.fabric import framing
from repro.utils.errors import CommunicatorError

_ALIGN = 64  # cache-line align every array slice in a pool

_U64 = struct.Struct("<Q")

#: ring header layout: head(u64) | tail(u64) | closed(u8), padded
_HEAD_OFF = 0
_TAIL_OFF = 8
_CLOSED_OFF = 16
_DATA_OFF = 64


def _destroy(shm: shared_memory.SharedMemory) -> None:
    """Free a shared block, tolerating live numpy views.

    ``unlink`` drops the name (the memory itself dies with the last
    mapping); ``close`` raises ``BufferError`` while numpy views are
    alive, which is harmless — the mapping is reclaimed at process exit.
    """
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        pass


class SharedArrayPool:
    """Re-back a list of ndarrays on one shared-memory block.

    The returned views preserve dtype, shape and initial contents; each
    slice is cache-line aligned so concurrent per-rank writers never
    share a line across pool instances.
    """

    def __init__(self, arrays: list[np.ndarray], *, name_hint: str = "pool"):
        offsets: list[int] = []
        size = 0
        for arr in arrays:
            size = -(-size // _ALIGN) * _ALIGN  # round up
            offsets.append(size)
            size += int(arr.nbytes)
        self.shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        self.arrays: list[np.ndarray] = []
        for arr, off in zip(arrays, offsets):
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=self.shm.buf, offset=off)
            np.copyto(view, arr)
            self.arrays.append(view)

    def seal(self) -> None:
        """Unlink the backing name immediately, keeping the mapping.

        The pool's views (and any fork children's inherited mappings)
        stay fully usable; only the filesystem name goes away, so a pool
        owned by a long-lived object cannot leak a ``/dev/shm`` entry if
        its owner never reaches ``destroy()``.  Long-lived pools — e.g.
        the sharded session's halo-window pool — seal right after
        construction.
        """
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def destroy(self) -> None:
        # Views into self.arrays may still be referenced by trainer
        # state; release ours first so close() has a chance to succeed.
        self.arrays = []
        _destroy(self.shm)


class RingClosed(CommunicatorError):
    """Write attempted on a ring whose producer already closed it."""


class ShmRing:
    """SPSC byte ring over shared memory, carrying length-prefixed frames.

    One process writes (the forked rank child), one reads (the driver).
    ``head``/``tail`` are free-running u64 byte counters — ``tail - head``
    bytes are readable, ``capacity - (tail - head)`` writable.  A writer
    that outruns the consumer blocks (spin + sleep) until space frees,
    so frames larger than the ring still flow as long as the consumer
    drains concurrently.
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.shm = shared_memory.SharedMemory(
            create=True, size=_DATA_OFF + self.capacity)
        self.shm.buf[:_DATA_OFF] = bytes(_DATA_OFF)
        self._assembler = framing.FrameAssembler()  # consumer side

    # -- counters (each has exactly one writing process) ----------------
    def _load(self, off: int) -> int:
        return _U64.unpack_from(self.shm.buf, off)[0]

    def _store(self, off: int, value: int) -> None:
        _U64.pack_into(self.shm.buf, off, value)

    @property
    def closed(self) -> bool:
        return self.shm.buf[_CLOSED_OFF] != 0

    def close_writer(self) -> None:
        """Producer side: publish that no more bytes are coming."""
        self.shm.buf[_CLOSED_OFF] = 1

    # -- producer -------------------------------------------------------
    def _write_bytes(self, data: bytes) -> None:
        mv = memoryview(data)
        tail = self._load(_TAIL_OFF)
        while mv:
            free = self.capacity - (tail - self._load(_HEAD_OFF))
            if free == 0:
                time.sleep(0.0002)
                continue
            pos = tail % self.capacity
            n = min(len(mv), free, self.capacity - pos)
            self.shm.buf[_DATA_OFF + pos:_DATA_OFF + pos + n] = mv[:n]
            mv = mv[n:]
            tail += n
            # Publish *after* the payload bytes are in place — the
            # consumer never reads past tail, so it can only observe
            # fully written data.
            self._store(_TAIL_OFF, tail)

    def write_frame(self, frame: bytes) -> None:
        """Write one u64-length-prefixed frame (blocks while full)."""
        if self.closed:
            raise RingClosed("ring writer already closed")
        self._write_bytes(framing.prefixed(frame))

    # -- consumer -------------------------------------------------------
    def drain(self) -> list[bytes]:
        """Consume available bytes; return any *complete* frames.

        Partial frames are buffered consumer-side and completed by later
        calls — safe to call in a polling loop.
        """
        frames: list[bytes] = []
        head = self._load(_HEAD_OFF)
        tail = self._load(_TAIL_OFF)
        while head != tail:
            pos = head % self.capacity
            n = min(tail - head, self.capacity - pos)
            frames += self._assembler.feed(
                self.shm.buf[_DATA_OFF + pos:_DATA_OFF + pos + n])
            head += n
            self._store(_HEAD_OFF, head)
        return frames

    def destroy(self) -> None:
        _destroy(self.shm)
