"""Socket fabric: forked ranks reporting over TCP, length-prefixed frames.

Same fork-per-step execution model as the process fabric, but the data
plane is a real byte stream: each child connects to the driver's
listener, identifies itself with a hello frame, and after its step ships
its registered output arrays (gradient buckets) plus a result frame —
all :mod:`~repro.runtime.fabric.framing` frames behind u64 length
prefixes.  ``host``/``port`` are configurable so the same wire format
can span machines; the in-repo transport keeps driver and ranks on one
host with forked children.
"""

from __future__ import annotations

import socket
import time
import weakref
from typing import Callable

import numpy as np

from repro.runtime.fabric import framing
from repro.runtime.fabric.base import ChildHandle, ForkFabric, run_child
from repro.runtime.transport import _check_rank
from repro.utils.errors import CommunicatorError

#: How long the driver waits for a dead child's connection to surface
#: before declaring the rank frameless (it crashed before connecting).
_ORPHAN_GRACE_SECONDS = 2.0


def _send_frame(conn: socket.socket, frame: bytes) -> None:
    conn.sendall(framing.prefixed(frame))


class _Claimed:
    """A connection that has said hello: its socket and parsed frames."""

    def __init__(self, conn: socket.socket,
                 assembler: framing.FrameAssembler, frames: list[bytes]):
        self.conn = conn
        self.assembler = assembler
        self.frames = frames
        self.eof = False

    def pump(self) -> None:
        """Drain whatever the kernel has buffered (non-blocking)."""
        while not self.eof:
            try:
                chunk = self.conn.recv(1 << 16)
            except BlockingIOError:
                return
            except OSError:
                chunk = b""
            if not chunk:
                self.eof = True
                self.conn.close()
                return
            self.frames += self.assembler.feed(chunk)


class _SocketHandle(ChildHandle):
    def __init__(self, rank: int, proc, transport: "SocketTransport"):
        super().__init__(rank, proc)
        self.transport = transport
        self.claimed: _Claimed | None = None
        self._death_seen: float | None = None

    def poll(self) -> None:
        if self.claimed is None:
            self.claimed = self.transport._claimed.pop(self.rank, None)
        if self.claimed is not None:
            self.claimed.pump()
        if self.proc.is_alive():
            return
        if self.claimed is None:
            # The child may have connected just before dying; give the
            # accept queue a moment before declaring it frameless.
            if self._death_seen is None:
                self._death_seen = time.perf_counter()
            if time.perf_counter() - self._death_seen < _ORPHAN_GRACE_SECONDS:
                return
        elif not self.claimed.eof:
            return
        self.proc.join()
        self._finalize()
        self.finished = True

    def _finalize(self) -> None:
        if self.claimed is None:
            return
        outbox = self.transport._outbox.get(self.rank, [])
        arrays: list[np.ndarray] = []
        for raw in self.claimed.frames:
            kind, value = framing.decode(raw)
            if kind == framing.KIND_NDARRAY:
                arrays.append(value)
            else:
                self.outcome = value  # the last object frame wins
        if self.outcome is None:
            return  # frameless death: arrays (if any) are discarded
        if len(arrays) != len(outbox):
            raise CommunicatorError(
                f"rank {self.rank} shipped {len(arrays)} output arrays, "
                f"expected {len(outbox)}")
        for target, arr in zip(outbox, arrays):
            if target.shape != arr.shape or target.dtype != arr.dtype:
                raise CommunicatorError(
                    f"rank {self.rank} output array mismatch: got "
                    f"{arr.dtype}{arr.shape}, expected "
                    f"{target.dtype}{target.shape}")
            np.copyto(target, arr)

    def abandon(self) -> None:
        if self.claimed is not None:
            self.claimed.conn.close()


def _close_listener(listener: socket.socket) -> None:
    try:
        listener.close()
    except OSError:
        pass


class SocketTransport(ForkFabric):
    """TCP fabric: forked ranks, per-peer connections to the driver.

    Defaults to loopback with an ephemeral port; pass ``host``/``port``
    to pin the listener (the wire format itself is machine-agnostic).
    Arrays registered through :meth:`attach_rank_buffers` are the rank's
    *outbox*: the child sends their post-step contents back as ndarray
    frames and the driver copies them into the originals, so callers see
    the same write-through semantics as the shm fabric.
    """

    def __init__(self, world_size: int, *, parallel: bool = True,
                 max_inflight: int | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        super().__init__(world_size, parallel=parallel,
                         max_inflight=max_inflight)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(world_size)
        self._listener.setblocking(False)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._outbox: dict[int, list[np.ndarray]] = {}
        self._unclaimed: list[_Claimed] = []
        self._claimed: dict[int, _Claimed] = {}
        self._finalizer = weakref.finalize(
            self, _close_listener, self._listener)

    # -- data plane -----------------------------------------------------
    def attach_rank_buffers(self, rank: int, buffers: list) -> list:
        """Register a rank's output arrays; children ship them back."""
        _check_rank(self.world_size, rank)
        self._outbox[rank] = list(buffers)
        return list(buffers)

    # -- control plane --------------------------------------------------
    def _poll_fabric(self) -> None:
        """Accept fresh connections and route them to ranks by hello."""
        while True:
            try:
                conn, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                break
            conn.setblocking(False)
            self._unclaimed.append(
                _Claimed(conn, framing.FrameAssembler(), []))
        for pending in list(self._unclaimed):
            pending.pump()
            if pending.frames:
                kind, hello = framing.decode(pending.frames.pop(0))
                if kind != framing.KIND_OBJECT or hello[0] != "hello":
                    raise CommunicatorError(
                        f"peer did not open with a hello frame: {hello!r}")
                self._claimed[int(hello[1])] = pending
                self._unclaimed.remove(pending)
            elif pending.eof:
                self._unclaimed.remove(pending)  # died before hello

    def _spawn(self, rank: int, fn: Callable[[int], object]) -> ChildHandle:
        address = self.address
        outbox = self._outbox.get(rank, [])

        def child() -> None:  # pragma: no cover — runs in the forked child
            conn = socket.create_connection(address)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            _send_frame(conn, framing.encode_object(("hello", rank)))

            def deliver(outcome: tuple) -> None:
                for arr in outbox:
                    _send_frame(conn, framing.encode_ndarray(arr))
                _send_frame(conn, framing.encode_object(outcome))
                conn.close()
            run_child(rank, fn, deliver)

        proc = self._ctx.Process(target=child, name=f"repro-rank-{rank}",
                                 daemon=True)
        proc.start()
        return _SocketHandle(rank, proc, self)

    def shutdown(self) -> None:
        """Close the listener and any stray connections (idempotent)."""
        for pending in self._unclaimed + list(self._claimed.values()):
            pending.conn.close()
        self._unclaimed = []
        self._claimed = {}
        _close_listener(self._listener)
