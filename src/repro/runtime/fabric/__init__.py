"""Real rank-execution fabrics: separate interpreters per rank.

The :mod:`repro.runtime.transport` fabrics run every rank inside the
driver interpreter (sequentially, or on GIL-sharing threads).  This
package provides the two fabrics where ranks own whole processes:

- :class:`ProcessTransport` — forked children with a zero-copy
  shared-memory data plane (:mod:`~repro.runtime.fabric.shm`).
- :class:`SocketTransport` — forked children reporting over TCP with
  length-prefixed frames (:mod:`~repro.runtime.fabric.framing`), the
  wire format that could span machines.

Both keep collectives centralized in the driver, so training curves are
bitwise identical to the sim/thread fabrics; both compose with
:class:`~repro.runtime.faults.FaultyTransport` (an injected crash is a
real child death).
"""

from repro.runtime.fabric import framing
from repro.runtime.fabric.shm import RingClosed, SharedArrayPool, ShmRing
from repro.runtime.fabric.base import CRASH_EXIT_CODE, ForkFabric
from repro.runtime.fabric.process import ProcessTransport
from repro.runtime.fabric.tcp import SocketTransport

__all__ = [
    "framing",
    "SharedArrayPool",
    "ShmRing",
    "RingClosed",
    "ForkFabric",
    "CRASH_EXIT_CODE",
    "ProcessTransport",
    "SocketTransport",
]
