"""PGT-I reproduction: memory-efficient distributed training for ST-GNNs.

This package reproduces *PGT-I: Scaling Spatiotemporal GNNs with
Memory-Efficient Distributed Training* (SC 2025) as a self-contained Python
library.  It provides:

- ``repro.autograd`` / ``repro.nn`` / ``repro.optim``: a NumPy reverse-mode
  automatic-differentiation engine and neural-network library standing in for
  PyTorch.
- ``repro.graph``: sensor-graph construction and diffusion supports.
- ``repro.datasets``: the paper's dataset catalog plus synthetic generators.
- ``repro.preprocessing``: the standard sliding-window pipeline (Algorithm 1)
  and the paper's index-batching datasets, with a byte-exact memory model.
- ``repro.hardware`` / ``repro.cluster``: a simulated HPC substrate (devices,
  memory spaces, interconnects) modeled on ALCF Polaris.
- ``repro.runtime``: the distributed execution layer — pluggable transports
  (simulated ranks or real threads), one collectives implementation,
  gradient bucketing and the ``ProcessGroup`` facade (``repro.distributed``
  remains as a deprecated shim over it).
- ``repro.models``: DCRNN, PGT-DCRNN, TGCN, A3T-GCN and ST-LLM.
- ``repro.training``: single-device and DDP trainers implementing
  index-batching, GPU-index-batching, distributed-index-batching and
  generalized-distributed-index-batching.
- ``repro.experiments``: one entry point per paper table and figure.
- ``repro.api``: the declarative pipeline tying it all together —
  registries, ``RunSpec`` and the ``run(spec)`` executor.

The quickest way in::

    import repro

    result = repro.api.run(repro.RunSpec(dataset="pems-bay",
                                         model="pgt-dcrnn",
                                         batching="index", scale="tiny"))
"""

from repro._version import __version__

__all__ = ["__version__", "api", "RunSpec", "RunResult", "run"]

_API_ATTRS = {"api", "RunSpec", "RunResult", "run"}


def __getattr__(name):
    """Lazy-load the api subsystem so ``import repro`` stays lightweight."""
    if name in _API_ATTRS:
        import repro.api as api
        if name == "api":
            return api
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
