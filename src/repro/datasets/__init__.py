"""Dataset catalog and synthetic spatiotemporal data generators."""

from repro.datasets.catalog import (
    CATALOG,
    DatasetSpec,
    get_spec,
    list_datasets,
)
from repro.datasets.base import SpatioTemporalDataset
from repro.datasets.loaders import load_dataset

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "get_spec",
    "list_datasets",
    "SpatioTemporalDataset",
    "load_dataset",
]
