"""Synthetic spatiotemporal signal generators.

The real PeMS/METR-LA files are Caltrans products we cannot redistribute, so
each domain gets a generator producing signals with the structure the models
must learn:

- **traffic**: a diurnal base profile (morning/evening rush) per sensor,
  weekly weekday/weekend modulation, spatially-correlated congestion events
  that diffuse along the sensor graph, small AR(1) noise, and a configurable
  missing-data rate recorded as zeros (PeMS encodes missing readings as 0,
  which is why DCRNN trains with a masked loss).
- **epidemiological**: stochastic SIR-style outbreaks seeded at random
  nodes, spreading along graph edges (chickenpox case counts).
- **energy**: a smooth wind-speed field (shared weather + local AR noise)
  pushed through a cubic power curve (windmill output).

All generators are deterministic in their seed and return float64 arrays in
the catalog's raw layout ``[entries, nodes, raw_features]``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.adjacency import SensorGraph
from repro.graph.supports import random_walk_matrix
from repro.utils.seeding import new_rng


def _ar1(rng: np.random.Generator, n: int, m: int, rho: float,
         scale: float) -> np.ndarray:
    """AR(1) noise, ``[n, m]`` with per-column independence."""
    eps = rng.standard_normal((n, m)) * scale * np.sqrt(1 - rho**2)
    out = np.empty((n, m))
    out[0] = rng.standard_normal(m) * scale
    for t in range(1, n):
        out[t] = rho * out[t - 1] + eps[t]
    return out


def traffic_signals(graph: SensorGraph, entries: int, *,
                    interval_minutes: int = 5, seed: int | str = 0,
                    free_flow_mph: float = 65.0,
                    missing_rate: float = 0.02) -> tuple[np.ndarray, np.ndarray]:
    """Generate traffic speeds ``[entries, nodes, 1]`` and timestamps.

    Speeds drop during rush hours; congestion events propagate to graph
    neighbours through one random-walk smoothing step per tick, giving the
    spatial correlation ST-GNNs exploit.
    """
    n = graph.num_nodes
    rng = new_rng("data", "traffic", graph.name, entries, seed)
    minutes = np.arange(entries, dtype=np.float64) * interval_minutes
    tod = (minutes % (24 * 60)) / (24 * 60)          # [entries] in [0,1)
    dow = (minutes // (24 * 60)) % 7                  # day of week

    # Per-sensor rush-hour severity and phase (arterial vs. freeway mix).
    am_sev = rng.uniform(5.0, 25.0, size=n)
    pm_sev = rng.uniform(5.0, 25.0, size=n)
    am_peak = rng.normal(8.0 / 24.0, 0.01, size=n)
    pm_peak = rng.normal(17.5 / 24.0, 0.01, size=n)
    width = rng.uniform(0.035, 0.06, size=n)

    def bump(center: np.ndarray, sev: np.ndarray) -> np.ndarray:
        d = tod[:, None] - center[None, :]
        d = np.minimum(np.abs(d), 1.0 - np.abs(d))   # wrap around midnight
        return sev[None, :] * np.exp(-(d / width[None, :]) ** 2)

    weekday = (dow < 5).astype(np.float64)[:, None]
    base = free_flow_mph + rng.normal(0, 2.0, size=n)[None, :]
    speeds = base - weekday * (bump(am_peak, am_sev) + bump(pm_peak, pm_sev))

    # Congestion shocks diffusing along the graph.  Lazy diffusion
    # (most mass stays at the epicenter, some leaks to neighbours) keeps
    # the shocks spatially local, so graph neighbours correlate more than
    # distant sensors — the structure ST-GNNs are built to exploit.
    P = random_walk_matrix(graph.weights)
    shock = np.zeros(n)
    shocks = np.empty((entries, n))
    events = rng.random(entries) < (0.5 * interval_minutes / 60.0)
    epicenters = rng.integers(0, n, size=entries)
    for t in range(entries):
        shock = 0.80 * shock + 0.12 * (P.T @ shock)
        if events[t]:
            shock[epicenters[t]] += rng.uniform(10.0, 30.0)
        shocks[t] = shock
    speeds = speeds - shocks

    speeds += _ar1(rng, entries, n, rho=0.85, scale=1.5)
    speeds = np.clip(speeds, 3.0, 80.0)

    # Missing readings are stored as zeros (as in raw PeMS extracts).
    mask = rng.random((entries, n)) < missing_rate
    speeds[mask] = 0.0
    return speeds[:, :, None], minutes


def epidemic_signals(graph: SensorGraph, entries: int, *,
                     interval_minutes: int = 7 * 24 * 60, seed: int | str = 0
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Weekly case counts ``[entries, nodes, 1]`` from graph-coupled outbreaks."""
    n = graph.num_nodes
    rng = new_rng("data", "epidemic", graph.name, entries, seed)
    P = random_walk_matrix(graph.weights)
    minutes = np.arange(entries, dtype=np.float64) * interval_minutes

    infected = rng.uniform(0.5, 3.0, size=n)
    season_phase = rng.uniform(0, 2 * np.pi)
    counts = np.empty((entries, n))
    for t in range(entries):
        season = 1.0 + 0.6 * np.sin(2 * np.pi * t / 52.18 + season_phase)
        pressure = P.T @ infected
        infected = (0.55 * infected + 0.4 * season * pressure
                    + rng.gamma(1.2, 0.4, size=n))
        infected = np.minimum(infected, 400.0)
        counts[t] = rng.poisson(np.maximum(infected, 0.0))
    return counts[:, :, None], minutes


def energy_signals(graph: SensorGraph, entries: int, *,
                   interval_minutes: int = 60, seed: int | str = 0
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Hourly normalised wind-farm output ``[entries, nodes, 1]``."""
    n = graph.num_nodes
    rng = new_rng("data", "energy", graph.name, entries, seed)
    minutes = np.arange(entries, dtype=np.float64) * interval_minutes

    # Shared synoptic weather + local turbulence.
    shared = _ar1(rng, entries, 1, rho=0.995, scale=3.0)
    local = _ar1(rng, entries, n, rho=0.9, scale=1.2)
    diurnal = 1.5 * np.sin(2 * np.pi * (minutes % (24 * 60)) / (24 * 60))[:, None]
    wind = 8.0 + shared + local + diurnal
    wind = np.clip(wind, 0.0, 30.0)

    # Cubic power curve with cut-in 3 m/s, rated 12 m/s, cut-out 25 m/s.
    power = np.clip((wind - 3.0) / (12.0 - 3.0), 0.0, 1.0) ** 3
    power[wind > 25.0] = 0.0
    return power[:, :, None], minutes


GENERATORS = {
    "traffic": traffic_signals,
    "epidemiological": epidemic_signals,
    "energy": energy_signals,
}
