"""Dynamic graphs with temporal signal (the paper's future-work extension).

PGT distinguishes *static graph + temporal signal* (what PGT-I ships) from
*dynamic graph + temporal signal*, where the adjacency itself evolves —
e.g. road closures, time-varying congestion-aware edge weights.  The
paper's conclusion names support for this structure as planned work; we
implement it: a raw dataset whose adjacency changes on a coarse schedule,
plus the matching index-batched form in
:mod:`repro.preprocessing.dynamic_index`.

The key observation carries over: the evolving adjacency is itself a time
series, so index-batching extends naturally by storing *one* copy of the
adjacency sequence and an index from time step to adjacency epoch, instead
of duplicating per-snapshot graph copies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.datasets.base import SpatioTemporalDataset
from repro.graph.adjacency import SensorGraph
from repro.utils.errors import ShapeError
from repro.utils.seeding import new_rng


@dataclass
class DynamicGraphDataset:
    """A spatiotemporal dataset whose adjacency evolves over time.

    Attributes
    ----------
    base:
        the underlying static dataset (signals + initial graph).
    adjacencies:
        one CSR weight matrix per *adjacency epoch* (graphs change on a
        coarser schedule than signals — e.g. hourly re-weighting of
        5-minute traffic data).
    epoch_of_entry:
        ``[entries]`` int array mapping each time step to its adjacency
        epoch; monotone non-decreasing.
    """

    base: SpatioTemporalDataset
    adjacencies: list[sp.csr_matrix]
    epoch_of_entry: np.ndarray

    def __post_init__(self):
        n = self.base.num_nodes
        for a in self.adjacencies:
            if a.shape != (n, n):
                raise ShapeError(f"adjacency {a.shape} does not match {n} nodes")
        if len(self.epoch_of_entry) != self.base.num_entries:
            raise ShapeError("epoch_of_entry must align with entries")
        if np.any(np.diff(self.epoch_of_entry) < 0):
            raise ShapeError("epoch_of_entry must be non-decreasing")
        if self.epoch_of_entry.max() >= len(self.adjacencies):
            raise ShapeError("epoch index out of range")

    @property
    def num_epochs(self) -> int:
        return len(self.adjacencies)

    def graph_at(self, entry: int) -> sp.csr_matrix:
        """The adjacency in force at time step ``entry``."""
        return self.adjacencies[int(self.epoch_of_entry[entry])]

    def duplicated_nbytes(self) -> int:
        """Bytes a naive per-snapshot graph materialisation would use
        (one adjacency copy per time step — the dynamic-graph analogue of
        the paper's snapshot duplication)."""
        per = [a.data.nbytes + a.indices.nbytes + a.indptr.nbytes
               for a in self.adjacencies]
        return int(sum(per[e] for e in self.epoch_of_entry))

    def indexed_nbytes(self) -> int:
        """Bytes of the index-batched representation: unique adjacencies
        plus the epoch index array."""
        per = sum(a.data.nbytes + a.indices.nbytes + a.indptr.nbytes
                  for a in self.adjacencies)
        return int(per + self.epoch_of_entry.nbytes)


def make_dynamic(dataset: SpatioTemporalDataset, *,
                 num_graph_epochs: int = 8, rewire_fraction: float = 0.05,
                 seed: int | str = 0) -> DynamicGraphDataset:
    """Derive a dynamic-graph dataset from a static one.

    Each adjacency epoch perturbs the previous epoch's weights: a random
    ``rewire_fraction`` of edges is re-weighted (congestion-aware edge
    costs) and a small number of edges is dropped/restored (closures).
    Deterministic in ``seed``.
    """
    if num_graph_epochs < 1:
        raise ValueError("need at least one graph epoch")
    if not 0.0 <= rewire_fraction <= 1.0:
        raise ValueError("rewire_fraction must be in [0, 1]")
    rng = new_rng("dynamic", dataset.spec.name, num_graph_epochs, seed)
    current = dataset.graph.weights.tocsr(copy=True)
    adjacencies = [current.copy()]
    for _ in range(num_graph_epochs - 1):
        current = current.copy()
        nnz = current.nnz
        k = max(1, int(rewire_fraction * nnz))
        sel = rng.choice(nnz, size=k, replace=False)
        current.data[sel] *= rng.uniform(0.5, 1.5, size=k)
        # Occasional closure: zero out one random edge (kept structurally
        # so epochs share sparsity pattern; eliminate_zeros would change it).
        current.data[rng.integers(0, nnz)] = 0.0
        adjacencies.append(current)
    bounds = np.linspace(0, dataset.num_entries, num_graph_epochs + 1)
    epoch_of_entry = (np.searchsorted(bounds[1:], np.arange(dataset.num_entries),
                                      side="right")).astype(np.int64)
    epoch_of_entry = np.clip(epoch_of_entry, 0, num_graph_epochs - 1)
    return DynamicGraphDataset(base=dataset, adjacencies=adjacencies,
                               epoch_of_entry=epoch_of_entry)
