"""Dataset loading: synthesise a catalog dataset at full or reduced scale."""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SpatioTemporalDataset
from repro.datasets.catalog import DatasetSpec, get_spec
from repro.datasets.synthetic import GENERATORS
from repro.graph.adjacency import random_sensor_network


def load_dataset(name: str, *, nodes: int | None = None,
                 entries: int | None = None, seed: int | str = 0,
                 dtype=np.float64) -> SpatioTemporalDataset:
    """Instantiate a catalog dataset from its synthetic generator.

    ``nodes`` / ``entries`` override the catalog shapes to produce a
    scaled-down working set (training benchmarks use reduced shapes; the
    memory model always uses the true shapes from ``dataset.spec``).
    A minimum of ``4 * horizon`` entries is enforced so every split
    contains at least one sliding window.
    """
    spec = get_spec(name)
    n_nodes = spec.num_nodes if nodes is None else int(nodes)
    n_entries = spec.num_entries if entries is None else int(entries)
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    min_entries = 4 * spec.horizon
    if n_entries < min_entries:
        raise ValueError(f"need at least {min_entries} entries for horizon "
                         f"{spec.horizon}, got {n_entries}")

    graph = random_sensor_network(n_nodes, seed=f"{spec.name}/{seed}")
    generator = GENERATORS[spec.domain]
    signals, timestamps = generator(graph, n_entries,
                                    interval_minutes=spec.interval_minutes,
                                    seed=seed)
    return SpatioTemporalDataset(signals=signals.astype(dtype), graph=graph,
                                 spec=spec, timestamps=timestamps)


def scaled_spec(spec: DatasetSpec, nodes: int, entries: int) -> DatasetSpec:
    """A copy of ``spec`` with working shapes (for scaled-down experiments
    that want the memory model to describe the reduced dataset)."""
    return DatasetSpec(
        name=f"{spec.name}-scaled", domain=spec.domain,
        feature_names=spec.feature_names, num_nodes=nodes,
        num_entries=entries, raw_features=spec.raw_features,
        horizon=spec.horizon, interval_minutes=spec.interval_minutes)
