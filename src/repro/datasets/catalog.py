"""The paper's dataset catalog (Table 1), with exact shapes.

Sizes "before preprocessing" count the raw node-signal tensor
``entries x nodes x raw_features`` in float64; sizes "after preprocessing"
follow the paper's eq. (1) with the *training* feature count (traffic
datasets gain a time-of-day channel in stage 1 of Figure 3).  Horizons are
the values that make eq. (1) reproduce Table 1 exactly: 12 for the traffic
datasets (the standard 12-step setup), 8 for Windmill-Large, 4 for
Chickenpox-Hungary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a spatiotemporal dataset.

    Attributes
    ----------
    name: canonical dataset name.
    domain: ``traffic`` / ``epidemiological`` / ``energy``.
    feature_names: signal channels used during training.
    num_nodes / num_entries: real dataset dimensions (paper Table 1).
    raw_features: channels stored in the source file (before the
        time-of-day channel is appended for traffic data).
    horizon: sliding-window length == forecast length used by the paper.
    interval_minutes: sampling period of the time series.
    """

    name: str
    domain: str
    feature_names: tuple[str, ...]
    num_nodes: int
    num_entries: int
    raw_features: int
    horizon: int
    interval_minutes: int

    @property
    def train_features(self) -> int:
        return len(self.feature_names)

    def raw_nbytes(self, dtype=np.float64) -> int:
        """Size before preprocessing: the raw file tensor."""
        return self.num_entries * self.num_nodes * self.raw_features * np.dtype(dtype).itemsize

    def augmented_nbytes(self, dtype=np.float64) -> int:
        """Size after stage 1 of Fig. 3 (time-of-day channel appended)."""
        return self.num_entries * self.num_nodes * self.train_features * np.dtype(dtype).itemsize


CATALOG: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("chickenpox-hungary", "epidemiological", ("case_count",),
                    num_nodes=20, num_entries=522, raw_features=1,
                    horizon=4, interval_minutes=7 * 24 * 60),
        DatasetSpec("windmill-large", "energy", ("energy_output",),
                    num_nodes=319, num_entries=17_472, raw_features=1,
                    horizon=8, interval_minutes=60),
        DatasetSpec("metr-la", "traffic", ("speed", "time_of_day"),
                    num_nodes=207, num_entries=34_272, raw_features=1,
                    horizon=12, interval_minutes=5),
        DatasetSpec("pems-bay", "traffic", ("speed", "time_of_day"),
                    num_nodes=325, num_entries=52_105, raw_features=1,
                    horizon=12, interval_minutes=5),
        DatasetSpec("pems-all-la", "traffic", ("speed", "time_of_day"),
                    num_nodes=2_716, num_entries=105_120, raw_features=1,
                    horizon=12, interval_minutes=5),
        DatasetSpec("pems", "traffic", ("speed", "time_of_day"),
                    num_nodes=11_160, num_entries=105_120, raw_features=1,
                    horizon=12, interval_minutes=5),
    ]
}


def get_spec(name: str) -> DatasetSpec:
    """Look up a catalog entry by (case-insensitive) name."""
    key = name.lower()
    if key not in CATALOG:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(CATALOG)}")
    return CATALOG[key]


def list_datasets() -> list[str]:
    return sorted(CATALOG)
