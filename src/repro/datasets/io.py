"""Dataset persistence: save/load raw datasets as portable ``.npz`` files.

Lets users generate a synthetic dataset once and share it — the role the
PeMS HDF extracts play for the original pipelines.
"""

from __future__ import annotations

import json

import numpy as np
import scipy.sparse as sp

from repro.datasets.base import SpatioTemporalDataset
from repro.datasets.catalog import DatasetSpec
from repro.graph.adjacency import SensorGraph


def save_dataset(path: str, dataset: SpatioTemporalDataset) -> None:
    """Write signals, graph and spec to one ``.npz`` archive."""
    w = dataset.graph.weights.tocsr()
    spec_json = json.dumps({
        "name": dataset.spec.name,
        "domain": dataset.spec.domain,
        "feature_names": list(dataset.spec.feature_names),
        "num_nodes": dataset.spec.num_nodes,
        "num_entries": dataset.spec.num_entries,
        "raw_features": dataset.spec.raw_features,
        "horizon": dataset.spec.horizon,
        "interval_minutes": dataset.spec.interval_minutes,
    })
    np.savez_compressed(
        path,
        signals=dataset.signals,
        timestamps=dataset.timestamps,
        coords=dataset.graph.coords,
        adj_data=w.data, adj_indices=w.indices, adj_indptr=w.indptr,
        adj_shape=np.array(w.shape),
        graph_name=np.frombuffer(dataset.graph.name.encode(), dtype=np.uint8),
        spec=np.frombuffer(spec_json.encode(), dtype=np.uint8))


def load_dataset_file(path: str) -> SpatioTemporalDataset:
    """Inverse of :func:`save_dataset`."""
    with np.load(path) as a:
        spec_dict = json.loads(bytes(a["spec"]).decode())
        spec = DatasetSpec(
            name=spec_dict["name"], domain=spec_dict["domain"],
            feature_names=tuple(spec_dict["feature_names"]),
            num_nodes=spec_dict["num_nodes"],
            num_entries=spec_dict["num_entries"],
            raw_features=spec_dict["raw_features"],
            horizon=spec_dict["horizon"],
            interval_minutes=spec_dict["interval_minutes"])
        weights = sp.csr_matrix(
            (a["adj_data"], a["adj_indices"], a["adj_indptr"]),
            shape=tuple(a["adj_shape"]))
        graph = SensorGraph(coords=a["coords"], weights=weights,
                            name=bytes(a["graph_name"]).decode())
        return SpatioTemporalDataset(signals=a["signals"], graph=graph,
                                     spec=spec, timestamps=a["timestamps"])
