"""In-memory representation of a raw spatiotemporal dataset."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.catalog import DatasetSpec
from repro.graph.adjacency import SensorGraph
from repro.utils.errors import ShapeError


@dataclass
class SpatioTemporalDataset:
    """A raw (pre-preprocessing) dataset: node signals + static graph.

    Attributes
    ----------
    signals:
        ``[entries, nodes, raw_features]`` array — the contents of the
        source file, before the time-of-day channel or any windowing.
    graph:
        the static sensor graph (paper §2.1's "static graph with
        dynamic/temporal signal").
    spec:
        the catalog entry this dataset instantiates.  When the dataset is a
        scaled-down synthetic stand-in, ``spec`` still carries the *real*
        shapes (used by the memory model), while ``signals`` carries the
        working shapes.
    timestamps:
        ``[entries]`` minutes-since-midnight-of-day-0, used to derive the
        time-of-day feature.
    """

    signals: np.ndarray
    graph: SensorGraph
    spec: DatasetSpec
    timestamps: np.ndarray

    def __post_init__(self):
        if self.signals.ndim != 3:
            raise ShapeError(
                f"signals must be [entries, nodes, features], got {self.signals.shape}")
        if self.signals.shape[1] != self.graph.num_nodes:
            raise ShapeError(
                f"signals have {self.signals.shape[1]} nodes but graph has "
                f"{self.graph.num_nodes}")
        if len(self.timestamps) != self.signals.shape[0]:
            raise ShapeError("timestamps must align with entries")

    @property
    def num_entries(self) -> int:
        return self.signals.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.signals.shape[1]

    @property
    def raw_features(self) -> int:
        return self.signals.shape[2]

    @property
    def nbytes(self) -> int:
        return self.signals.nbytes

    def time_of_day(self) -> np.ndarray:
        """Fraction-of-day in ``[0, 1)`` per entry (stage 1 of Fig. 3)."""
        return (self.timestamps % (24 * 60)) / (24.0 * 60.0)

    def with_time_feature(self) -> np.ndarray:
        """Return ``[entries, nodes, raw_features + 1]`` with time-of-day.

        This materialises a copy (it is the first memory-growth stage the
        paper identifies); index-batching applies it once, the standard
        pipeline applies it before duplicating windows.
        """
        tod = self.time_of_day().astype(self.signals.dtype)
        tod_channel = np.broadcast_to(tod[:, None, None],
                                      (self.num_entries, self.num_nodes, 1))
        return np.concatenate([self.signals, tod_channel], axis=2)
