"""Differentiable functions that combine multiple tensors or need extras.

Everything here follows the same convention as Tensor methods: compute the
forward value with NumPy, then (when gradients are enabled) attach a closure
that routes the output gradient to each input.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.autograd.buffers import GRAD_POOL
from repro.autograd.sparse_kernels import prepared_csr
from repro.autograd.tensor import Tensor, as_tensor, unbroadcast
from repro.utils.errors import ShapeError


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (grad is a split)."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make(data, tensors)
    if out.requires_grad:
        # Precompute each input's slice of the output; backward hands out
        # zero-copy views instead of paying np.split's dispatch per call.
        ax = axis if axis >= 0 else data.ndim + axis
        head = (slice(None),) * ax
        slices = []
        offset = 0
        for t in tensors:
            size = t.data.shape[axis]
            slices.append(head + (slice(offset, offset + size),))
            offset += size

        def _bw(g: np.ndarray) -> None:
            for t, sl in zip(tensors, slices):
                t._accumulate(g[sl])

        out._backward = _bw
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make(data, tensors)
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            for i, t in enumerate(tensors):
                t._accumulate(np.take(g, i, axis=axis))

        out._backward = _bw
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a = as_tensor(a)
    b = as_tensor(b, like=a)
    cond = np.asarray(condition)
    out = a._make(np.where(cond, a.data, b.data), (a, b))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            a._accumulate(unbroadcast(g * cond, a.data.shape))
            b._accumulate(unbroadcast(g * (~cond), b.data.shape))

        out._backward = _bw
    return out


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp values to ``[lo, hi]``; gradient is zero outside the range."""
    x = as_tensor(x)
    mask = (x.data >= lo) & (x.data <= hi)
    out = x._make(np.clip(x.data, lo, hi), (x,))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            x._accumulate(g * mask)

        out._backward = _bw
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)
    out = x._make(s, (x,))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            dot = (g * s).sum(axis=axis, keepdims=True)
            x._accumulate(s * (g - dot))

        out._backward = _bw
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    ls = shifted - log_z
    out = x._make(ls, (x,))
    if out.requires_grad:
        smax = np.exp(ls)

        def _bw(g: np.ndarray) -> None:
            x._accumulate(g - smax * g.sum(axis=axis, keepdims=True))

        out._backward = _bw
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    keep = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    out = x._make(x.data * keep, (x,))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            x._accumulate(g * keep)

        out._backward = _bw
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` (``[vocab, dim]``) by integer ``indices``."""
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise ShapeError("embedding indices must be integers")
    out = weight._make(weight.data[idx], (weight,))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            full = np.zeros_like(weight.data)
            np.add.at(full, idx, g)
            weight._accumulate(full)

        out._backward = _bw
    return out


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense tensor: ``A @ x``.

    ``x`` may be 2-D ``[n, d]`` or 3-D ``[batch, n, d]`` (applied per batch
    element by flattening the trailing axes, the standard GNN trick).  The
    sparse operand is a graph support and receives no gradient.

    The support is prepared once per compute dtype (CSR arrays cast to
    ``x.dtype``, transpose precomputed) and the product runs through the
    raw CSR kernel; layout scratch comes from the shared array pool, so
    steady-state calls allocate only the output itself.
    """
    x = as_tensor(x)
    A = prepared_csr(matrix, x.dtype)
    if x.ndim == 2:
        xd = x.data if x.data.flags.c_contiguous else np.ascontiguousarray(x.data)
        data = A.matmul(xd)
    elif x.ndim == 3:
        b, n, d = x.shape
        if n != A.shape[1]:
            raise ShapeError(f"support has {A.shape[1]} cols, input has {n} nodes")
        # [b, n, d] -> [n, b*d] so one CSR matmul covers the whole batch.
        flat = _pooled_transpose(x.data)
        data = A.matmul(flat.reshape(n, b * d)).reshape(A.shape[0], b, d)
        GRAD_POOL.give(flat)
        data = data.transpose(1, 0, 2)
    else:
        raise ShapeError(f"sparse_matmul expects 2-D or 3-D input, got {x.ndim}-D")
    out = x._make(data, (x,))
    if out.requires_grad:
        At = A.T

        def _bw(g: np.ndarray) -> None:
            if g.ndim == 2:
                gd = g if g.flags.c_contiguous else np.ascontiguousarray(g)
                res = _pooled_empty((At.shape[0], g.shape[1]), gd.dtype)
                x._accumulate(At.matmul_out(gd, res))
                GRAD_POOL.give(res)
            else:
                b, m, d = g.shape
                flat = _pooled_transpose(g)
                res = _pooled_empty((At.shape[0], b, d), flat.dtype)
                At.matmul_out(flat.reshape(m, b * d), res.reshape(-1, b * d))
                x._accumulate(res.transpose(1, 0, 2))
                GRAD_POOL.give(flat)
                GRAD_POOL.give(res)

        out._backward = _bw
    return out


def _pooled_empty(shape: tuple[int, ...], dtype) -> np.ndarray:
    """A pooled (or fresh) uninitialised array for transient scratch."""
    buf = GRAD_POOL.take(shape, dtype)
    return buf if buf is not None else np.empty(shape, dtype)


def _pooled_transpose(arr: np.ndarray) -> np.ndarray:
    """Contiguous ``[n, b, d]`` copy of a ``[b, n, d]`` array via the pool."""
    b, n, d = arr.shape
    buf = _pooled_empty((n, b, d), arr.dtype)
    np.copyto(buf, arr.transpose(1, 0, 2))
    return buf


def gru_update(u: Tensor, h: Tensor, cand: Tensor) -> Tensor:
    """Fused GRU state update ``u * h + (1 - u) * cand`` as one graph node.

    Computes the same elementary operations (and therefore the same
    floating-point values) as the four-node composition it replaces, but
    records a single backward closure instead of four.
    """
    u = as_tensor(u)
    h = as_tensor(h, like=u)
    cand = as_tensor(cand, like=u)
    ud, hd, cd = u.data, h.data, cand.data
    one_minus_u = 1.0 - ud
    data = ud * hd
    data += one_minus_u * cd
    out = u._make(data, (u, h, cand))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            gu = g * hd
            gu -= g * cd
            u._accumulate(unbroadcast(gu, ud.shape))
            h._accumulate(unbroadcast(g * ud, hd.shape))
            cand._accumulate(unbroadcast(g * one_minus_u, cd.shape))

        out._backward = _bw
    return out


def gru_gates(pre: Tensor, h: Tensor) -> tuple[Tensor, Tensor]:
    """Fused GRU gate block: one backend kernel instead of four ops.

    ``pre`` holds both gate pre-activations ``[..., 2*H]`` (reset gate in
    the first half, update gate in the second, matching the cells' weight
    layout); ``h`` is the previous state ``[..., H]``.  Returns
    ``(r * h, u)`` where ``r``/``u`` are the sigmoid halves — exactly the
    two values the GRU recurrence consumes.  The whole
    sigmoid/slice/multiply chain runs as a single pass on backends that
    provide it; the numpy backend's reference implementation defines the
    semantics (and the stable-sigmoid numerics) compiled kernels must
    match.
    """
    pre = as_tensor(pre)
    h = as_tensor(h, like=pre)
    hidden = h.shape[-1]
    if pre.shape != h.shape[:-1] + (2 * hidden,):
        raise ShapeError(f"gru_gates expects pre [..., {2 * hidden}] matching "
                         f"h {h.shape}, got {pre.shape}")
    backend = kernels.active_backend()
    s = np.empty(pre.shape, pre.dtype)       # both activations, kept for bwd
    rh_data = np.empty(h.shape, pre.dtype)
    backend.gru_gates_fwd(pre.data, h.data, s, rh_data)
    rh = pre._make(rh_data, (pre, h))
    u = pre._make(s[..., hidden:], (pre,))
    if rh.requires_grad:

        def _bw_rh(g: np.ndarray) -> None:
            dpre = _pooled_empty(pre.shape, pre.dtype)
            dh = _pooled_empty(h.shape, h.dtype)
            backend.gru_gates_bwd_rh(g, s, h.data, dpre, dh)
            pre._accumulate(dpre)
            h._accumulate(dh)
            GRAD_POOL.give(dpre)
            GRAD_POOL.give(dh)

        rh._backward = _bw_rh
    if u.requires_grad:

        def _bw_u(g: np.ndarray) -> None:
            dpre = _pooled_empty(pre.shape, pre.dtype)
            backend.gru_gates_bwd_u(g, s, dpre)
            pre._accumulate(dpre)
            GRAD_POOL.give(dpre)

        u._backward = _bw_u
    return rh, u


def gru_blend(u: Tensor, h: Tensor, cand_pre: Tensor) -> Tensor:
    """Fused GRU candidate + state update: ``u*h + (1-u)*tanh(cand_pre)``.

    Folds the candidate tanh into the blend so the whole cell tail is one
    graph node.  All three inputs share the state shape ``[..., H]``; the
    tanh output is retained for the backward pass (``1 - c**2``).
    """
    u = as_tensor(u)
    h = as_tensor(h, like=u)
    cand_pre = as_tensor(cand_pre, like=u)
    if not (u.shape == h.shape == cand_pre.shape):
        raise ShapeError(f"gru_blend expects matching shapes, got "
                         f"{u.shape}/{h.shape}/{cand_pre.shape}")
    backend = kernels.active_backend()
    c = np.empty(u.shape, u.dtype)           # tanh(cand_pre), kept for bwd
    data = np.empty(u.shape, u.dtype)
    backend.gru_blend_fwd(u.data, h.data, cand_pre.data, c, data)
    out = u._make(data, (u, h, cand_pre))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            du = _pooled_empty(u.shape, u.dtype)
            dh = _pooled_empty(h.shape, h.dtype)
            dcpre = _pooled_empty(cand_pre.shape, cand_pre.dtype)
            backend.gru_blend_bwd(g, u.data, h.data, c, du, dh, dcpre)
            u._accumulate(du)
            h._accumulate(dh)
            cand_pre._accumulate(dcpre)
            GRAD_POOL.give(du)
            GRAD_POOL.give(dh)
            GRAD_POOL.give(dcpre)

        out._backward = _bw
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with subgradient split evenly at ties."""
    a = as_tensor(a)
    b = as_tensor(b, like=a)
    out = a._make(np.maximum(a.data, b.data), (a, b))
    if out.requires_grad:
        ga_mask = (a.data > b.data) + 0.5 * (a.data == b.data)

        def _bw(g: np.ndarray) -> None:
            a._accumulate(unbroadcast(g * ga_mask, a.data.shape))
            b._accumulate(unbroadcast(g * (1.0 - ga_mask), b.data.shape))

        out._backward = _bw
    return out


def pad_last(x: Tensor, pad: int, value: float = 0.0) -> Tensor:
    """Pad the last axis on the right with ``pad`` entries of ``value``."""
    if pad == 0:
        return x
    x = as_tensor(x)
    widths = [(0, 0)] * (x.ndim - 1) + [(0, pad)]
    out = x._make(np.pad(x.data, widths, constant_values=value), (x,))
    if out.requires_grad:

        def _bw(g: np.ndarray) -> None:
            x._accumulate(g[..., : x.shape[-1]])

        out._backward = _bw
    return out
