"""Low-overhead CSR kernels for the training hot path.

The graph supports used by every ST-GNN layer are *constants*: the same
sparse matrix multiplies thousands of activations per epoch.  Going
through ``scipy.sparse.__matmul__`` for each of those pays for format
checks, index-dtype negotiation and a fresh ``A.T.tocsr()`` conversion on
every backward — which profiling shows dominates small-scale training.

This module keeps a bounded cache of *prepared* supports: the CSR arrays
cast to the compute dtype plus the precomputed CSR transpose.  The actual
product is computed by scipy's C kernel (``csr_matvecs``) directly into a
caller-provided output buffer, skipping the wrapper entirely; when the
private kernel is unavailable the code transparently falls back to the
public operator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

try:  # scipy's C kernel: csr_matvecs(M, N, n_vecs, indptr, indices, data, x, y)
    from scipy.sparse import _sparsetools as _st
    _HAVE_CSR_MATVECS = hasattr(_st, "csr_matvecs")
except ImportError:  # pragma: no cover - depends on scipy build
    _st = None
    _HAVE_CSR_MATVECS = False


class PreparedCSR:
    """One support matrix readied for repeated products in one dtype."""

    __slots__ = ("shape", "indptr", "indices", "data", "csr", "_transpose")

    def __init__(self, matrix: sp.spmatrix, dtype: np.dtype):
        csr = matrix.tocsr()
        if csr.data.dtype != dtype:
            csr = csr.astype(dtype)
        csr.sum_duplicates()
        self.csr = csr
        self.shape = csr.shape
        self.indptr = csr.indptr
        self.indices = csr.indices
        self.data = csr.data
        self._transpose: PreparedCSR | None = None

    @property
    def T(self) -> "PreparedCSR":
        """Prepared transpose (computed once, cached)."""
        if self._transpose is None:
            t = PreparedCSR(self.csr.T.tocsr(), self.data.dtype)
            t._transpose = self
            self._transpose = t
        return self._transpose

    def matmul_out(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[:] = A @ x`` for C-contiguous 2-D ``x``; no allocation.

        ``x`` is ``[n, v]``, ``out`` is ``[m, v]``; both must match the
        prepared dtype (the C kernel is monomorphic).
        """
        if _HAVE_CSR_MATVECS and x.flags.c_contiguous and \
                out.flags.c_contiguous and x.dtype == self.data.dtype \
                and out.dtype == self.data.dtype:
            out[...] = 0
            _st.csr_matvecs(self.shape[0], self.shape[1], x.shape[1],
                            self.indptr, self.indices, self.data,
                            x.reshape(-1), out.reshape(-1))
            return out
        np.copyto(out, self.csr @ x, casting="unsafe")
        return out

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` into a fresh array (for outputs that must be owned)."""
        out = np.empty((self.shape[0], x.shape[1]), dtype=self.data.dtype)
        return self.matmul_out(x, out)


#: Prepared-support memo.  Keyed by (id(matrix), dtype); each value keeps a
#: strong reference to its source matrix so an id cannot be recycled while
#: its entry is alive.  Bounded FIFO like the api-layer caches.
_PREPARED: dict[tuple[int, str], tuple[sp.spmatrix, PreparedCSR]] = {}
_PREPARED_MAX = 64


def prepared_csr(matrix: sp.spmatrix, dtype) -> PreparedCSR:
    """Cached :class:`PreparedCSR` for ``matrix`` in ``dtype``."""
    dtype = np.dtype(dtype)
    key = (id(matrix), dtype.str)
    entry = _PREPARED.get(key)
    if entry is not None and entry[0] is matrix:
        return entry[1]
    if len(_PREPARED) >= _PREPARED_MAX:
        _PREPARED.pop(next(iter(_PREPARED)))
    prepared = PreparedCSR(matrix, dtype)
    _PREPARED[key] = (matrix, prepared)
    return prepared


def clear_prepared_cache() -> None:
    """Drop all cached prepared supports (tests / memory pressure)."""
    _PREPARED.clear()
