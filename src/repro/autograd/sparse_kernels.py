"""Low-overhead CSR kernels for the training hot path.

The graph supports used by every ST-GNN layer are *constants*: the same
sparse matrix multiplies thousands of activations per epoch.  Going
through ``scipy.sparse.__matmul__`` for each of those pays for format
checks, index-dtype negotiation and a fresh ``A.T.tocsr()`` conversion on
every backward — which profiling shows dominates small-scale training.

This module keeps a bounded cache of *prepared* supports: the CSR arrays
cast to the compute dtype plus the precomputed CSR transpose.  The actual
product is dispatched through :mod:`repro.kernels` — the numpy backend
runs scipy's C kernel (``csr_matvecs``) directly into a caller-provided
output buffer, and compiled backends substitute their own node-parallel
kernels with identical accumulation order.

The cache is bounded on two axes: at most ``_PREPARED_MAX`` distinct
support matrices (FIFO, like the api-layer caches), and at most
``_PREPARED_DTYPES_MAX`` dtypes per matrix so per-support entries cannot
grow without bound when a caller alternates compute dtypes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import kernels


class PreparedCSR:
    """One support matrix readied for repeated products in one dtype."""

    __slots__ = ("shape", "indptr", "indices", "data", "csr", "_transpose")

    def __init__(self, matrix: sp.spmatrix, dtype: np.dtype):
        csr = matrix.tocsr()
        if csr.data.dtype != dtype:
            csr = csr.astype(dtype)
        csr.sum_duplicates()
        self.csr = csr
        self.shape = csr.shape
        self.indptr = csr.indptr
        self.indices = csr.indices
        self.data = csr.data
        self._transpose: PreparedCSR | None = None

    @property
    def T(self) -> "PreparedCSR":
        """Prepared transpose (computed once, cached)."""
        if self._transpose is None:
            t = PreparedCSR(self.csr.T.tocsr(), self.data.dtype)
            t._transpose = self
            self._transpose = t
        return self._transpose

    def matmul_out(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[:] = A @ x`` for C-contiguous 2-D ``x``; no allocation.

        ``x`` is ``[n, v]``, ``out`` is ``[m, v]``; both must match the
        prepared dtype (the kernels are monomorphic).  Dispatches to the
        active :mod:`repro.kernels` backend.
        """
        return kernels.active_backend().csr_matmul_out(self, x, out)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` into a fresh array (for outputs that must be owned)."""
        out = np.empty((self.shape[0], x.shape[1]), dtype=self.data.dtype)
        return self.matmul_out(x, out)


#: Prepared-support memo.  Keyed by id(matrix) -> (matrix, {dtype: prepared});
#: each value keeps a strong reference to its source matrix so an id cannot
#: be recycled while its entry is alive.
_PREPARED: dict[int, tuple[sp.spmatrix, dict[str, PreparedCSR]]] = {}
_PREPARED_MAX = 64        # distinct support matrices (FIFO)
_PREPARED_DTYPES_MAX = 2  # dtypes kept per matrix (f32 + f64 in practice)


def prepared_csr(matrix: sp.spmatrix, dtype) -> PreparedCSR:
    """Cached :class:`PreparedCSR` for ``matrix`` in ``dtype``."""
    dtype = np.dtype(dtype)
    entry = _PREPARED.get(id(matrix))
    if entry is not None and entry[0] is matrix:
        by_dtype = entry[1]
        prepared = by_dtype.get(dtype.str)
        if prepared is not None:
            return prepared
    else:
        if len(_PREPARED) >= _PREPARED_MAX:
            _PREPARED.pop(next(iter(_PREPARED)))
        by_dtype = {}
        _PREPARED[id(matrix)] = (matrix, by_dtype)
    while len(by_dtype) >= _PREPARED_DTYPES_MAX:
        by_dtype.pop(next(iter(by_dtype)))
    prepared = PreparedCSR(matrix, dtype)
    by_dtype[dtype.str] = prepared
    return prepared


def clear_prepared_cache() -> None:
    """Drop all cached prepared supports (tests / memory pressure)."""
    _PREPARED.clear()
