"""The :class:`Tensor` class: a NumPy array with reverse-mode autograd.

The implementation follows the classic define-by-run tape design: every
operation that produces a Tensor from Tensors stores a closure computing the
contribution of the output gradient to each input gradient.  ``backward()``
topologically sorts the recorded graph and runs the closures in reverse.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.autograd.buffers import GRAD_POOL
from repro.autograd.grad_mode import is_grad_enabled
from repro.utils.errors import ShapeError

DEFAULT_DTYPE = np.float32

ArrayLike = "np.ndarray | float | int | list | tuple | Tensor"


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    NumPy broadcasting either prepends axes or stretches size-1 axes; the
    gradient of a broadcast is the sum over each stretched/added axis.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        raise ShapeError(f"cannot unbroadcast {grad.shape} to {shape}")
    return grad


class Tensor:
    """A multidimensional array supporting reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Floating inputs keep
        their dtype; non-float inputs are cast to the default float dtype
        unless ``dtype`` says otherwise.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make NumPy defer to our reflected operators

    def __init__(self, data, requires_grad: bool = False,
                 dtype: np.dtype | None = None, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif arr.dtype.kind != "f":  # non-float input: cast to default float
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        out = self._make(self.data.astype(dtype), (self,))
        if out.requires_grad:
            src_dtype = self.dtype

            def _bw(g: np.ndarray) -> None:
                self._accumulate(g.astype(src_dtype))

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        """Create an output tensor, wiring ``requires_grad`` and parents."""
        rg = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=rg)
        if rg:
            out._parents = tuple(parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` without allocating when possible.

        First-touch buffers come from the shared :data:`GRAD_POOL` (refilled
        by ``backward`` when interior nodes release their gradients), so a
        steady-state training step performs no gradient allocations at all.
        """
        if not self.requires_grad:
            return
        if not (isinstance(grad, np.ndarray) and grad.dtype == self.data.dtype):
            grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            buf = GRAD_POOL.take(self.data.shape, self.data.dtype)
            if buf is None:
                self.grad = grad.copy()
            else:
                np.copyto(buf, grad)
                self.grad = buf
        else:
            np.add(self.grad, grad, out=self.grad)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (scalar outputs are the common case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            # Interior activations are single-use: free their gradient and
            # graph edges so large training graphs are reclaimed eagerly
            # (important for long unrolled RNN sequences).  The gradient
            # buffer goes back to the pool for the next step's backward.
            if node._parents:
                GRAD_POOL.give(node.grad)
                node.grad = None
                node._backward = None
                node._parents = ()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, like=self)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g)
                b._accumulate(g)

            out._backward = _bw
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other, like=self)
        out = self._make(self.data - other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g)
                b._accumulate(-g)

            out._backward = _bw
        return out

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, like=self) - self

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, like=self)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * b.data)
                b._accumulate(g * a.data)

            out._backward = _bw
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, like=self)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g / b.data)
                b._accumulate(-g * a.data / (b.data * b.data))

            out._backward = _bw
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, like=self) / self

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(-g)

            out._backward = _bw
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor ** only supports scalar exponents")
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * exponent * a.data ** (exponent - 1))

            out._backward = _bw
        return out

    # Comparison operators return plain boolean arrays (no grad).
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Matmul / linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, like=self)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                ad, bd = a.data, b.data
                if ad.ndim == 1 and bd.ndim == 1:  # dot product
                    a._accumulate(g * bd)
                    b._accumulate(g * ad)
                    return
                if ad.ndim == 1:  # (k,) @ (..., k, n)
                    ga = (bd @ g[..., :, None])[..., 0]
                    a._accumulate(unbroadcast(ga, ad.shape))
                    b._accumulate(unbroadcast(ad[:, None] * g[..., None, :],
                                              bd.shape))
                    return
                if bd.ndim == 1:  # (..., m, k) @ (k,)
                    a._accumulate(unbroadcast(g[..., :, None] * bd, ad.shape))
                    b._accumulate(unbroadcast((np.swapaxes(ad, -1, -2) @ g[..., :, None])[..., 0],
                                              bd.shape))
                    return
                ga = g @ np.swapaxes(bd, -1, -2)
                gb = np.swapaxes(ad, -1, -2) @ g
                a._accumulate(unbroadcast(ga, ad.shape))
                b._accumulate(unbroadcast(gb, bd.shape))

            out._backward = _bw
        return out

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other, like=self) @ self

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g.reshape(a.data.shape))

            out._backward = _bw
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes_t = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_t = tuple(axes[0])
        else:
            axes_t = tuple(axes)
        out = self._make(self.data.transpose(axes_t), (self,))
        if out.requires_grad:
            a = self
            inv = tuple(np.argsort(axes_t))

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g.transpose(inv))

            out._backward = _bw
        return out

    def swapaxes(self, a1: int, a2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a1], axes[a2] = axes[a2], axes[a1]
        return self.transpose(axes)

    def __getitem__(self, idx) -> "Tensor":
        out = self._make(self.data[idx], (self,))
        if out.requires_grad:
            a = self
            # Basic (slice/int) indexing selects each element at most once,
            # so the scatter is a plain assignment; only advanced (array)
            # indexing needs the much slower duplicate-safe np.add.at.
            basic = _is_basic_index(idx)

            def _bw(g: np.ndarray) -> None:
                full = np.zeros_like(a.data)
                if basic:
                    full[idx] = g
                else:
                    np.add.at(full, idx, g)
                a._accumulate(full)

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(_expand_reduced(g, a.data.shape, axis, keepdims))

            out._backward = _bw
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.mean(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            a = self
            count = a.data.size if axis is None else np.prod(
                [a.data.shape[ax] for ax in _norm_axes(axis, a.ndim)])

            def _bw(g: np.ndarray) -> None:
                a._accumulate(_expand_reduced(g, a.data.shape, axis, keepdims) / count)

            out._backward = _bw
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                expanded_out = _expand_reduced(np.asarray(out_data), a.data.shape, axis, keepdims)
                mask = (a.data == expanded_out)
                counts = _expand_reduced(mask.sum(axis=axis, keepdims=keepdims),
                                         a.data.shape, axis, keepdims)
                a._accumulate(_expand_reduced(g, a.data.shape, axis, keepdims)
                              * mask / np.maximum(counts, 1))

            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (also exposed in functional)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * data)

            out._backward = _bw
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g / a.data)

            out._backward = _bw
        return out

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * 0.5 / np.maximum(data, 1e-12))

            out._backward = _bw
        return out

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * (1.0 - data * data))

            out._backward = _bw
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic via one exp of the negated magnitude:
        # x >= 0: 1/(1+e^-x); x < 0: e^x/(1+e^x).  Equal to the clipped
        # two-branch formulation to float precision, at a third of the cost.
        t = np.exp(-np.abs(self.data))
        denom = t + 1.0
        data = np.where(self.data >= 0, 1.0 / denom, t / denom)
        data = data.astype(self.data.dtype, copy=False)
        out = self._make(data, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * data * (1.0 - data))

            out._backward = _bw
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(self.data * mask, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * mask)

            out._backward = _bw
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accumulate(g * np.sign(a.data))

            out._backward = _bw
        return out


def _raw(x) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x)


def _is_basic_index(idx) -> bool:
    """True when ``idx`` is pure basic indexing (no arrays, no bool masks)."""
    if isinstance(idx, tuple):
        return all(_is_basic_index(i) for i in idx)
    return idx is None or idx is Ellipsis or isinstance(idx, (int, slice)) \
        or (np.isscalar(idx) and np.issubdtype(type(idx), np.integer))


def _norm_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(g: np.ndarray, shape: tuple[int, ...], axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None and not keepdims:
        return np.broadcast_to(g, shape)
    if not keepdims:
        for ax in sorted(_norm_axes(axis, len(shape))):
            g = np.expand_dims(g, ax)
    return np.broadcast_to(g, shape)


def as_tensor(x, like: Tensor | None = None) -> Tensor:
    """Coerce ``x`` to a Tensor, matching ``like``'s dtype for scalars."""
    if isinstance(x, Tensor):
        return x
    dtype = like.dtype if like is not None else None
    return Tensor(np.asarray(x), dtype=dtype)
