"""Global gradient-recording switch (the analogue of ``torch.no_grad``)."""

from __future__ import annotations

import contextlib
from typing import Iterator

_GRAD_ENABLED: bool = True


def is_grad_enabled() -> bool:
    """Return whether new operations record backward graph edges."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording inside its block.

    Used by evaluation loops and optimizer updates so that parameter reads
    do not extend the autograd graph.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Re-enable graph recording inside a :func:`no_grad` block."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = prev
