"""Reverse-mode automatic differentiation over NumPy arrays.

This subpackage is the library's stand-in for PyTorch's autograd: a
:class:`~repro.autograd.tensor.Tensor` wraps a ``numpy.ndarray`` and records
the operations applied to it; :meth:`Tensor.backward` walks the recorded
graph in reverse topological order, accumulating gradients.

Design notes
------------
- Gradients are plain ``numpy.ndarray`` objects (no higher-order autograd).
- All binary ops broadcast with NumPy semantics; gradient reduction over
  broadcast axes is handled centrally by :func:`unbroadcast`.
- Sparse graph operators (`scipy.sparse` matrices) participate as constants
  via :func:`repro.autograd.functional.sparse_matmul`; gradients flow to the
  dense operand only, which matches how adjacency supports are used in
  ST-GNNs.
"""

from repro.autograd import functional
from repro.autograd.buffers import GRAD_POOL, ArrayPool
from repro.autograd.grad_mode import is_grad_enabled, no_grad
from repro.autograd.sparse_kernels import PreparedCSR, prepared_csr
from repro.autograd.tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "Tensor",
    "as_tensor",
    "unbroadcast",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "ArrayPool",
    "GRAD_POOL",
    "PreparedCSR",
    "prepared_csr",
]
