"""Recyclable gradient buffers for the backward pass.

Every training step builds and tears down the same graph shapes, so the
gradient arrays freed when ``backward()`` releases interior nodes are
exactly the arrays the *next* step's backward will need.  :class:`ArrayPool`
keeps them on a per-``(shape, dtype)`` free list: ``backward`` returns
interior gradients here instead of dropping them to the allocator, and
``Tensor._accumulate`` draws its first-touch buffers from the pool.

Leaf tensors (parameters, inputs) never recycle their gradients — user
code may hold ``p.grad`` across steps — so pooling is invisible outside
the engine.  The pool is bounded per key and can be cleared at any time.
"""

from __future__ import annotations

import numpy as np

_MAX_PER_KEY = 64


class ArrayPool:
    """Free lists of NumPy arrays keyed by ``(shape, dtype)``."""

    def __init__(self, max_per_key: int = _MAX_PER_KEY):
        self.max_per_key = max_per_key
        self._store: dict[tuple, list[np.ndarray]] = {}

    def take(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray | None:
        """Pop a cached array of this shape/dtype, or None (contents stale).

        Safe under concurrent rank threads: ``list.pop``/``append`` are
        atomic in CPython, and a race that empties the bucket between
        the check and the pop simply reports a miss.
        """
        bucket = self._store.get((shape, np.dtype(dtype).str))
        if bucket:
            try:
                return bucket.pop()
            except IndexError:
                return None
        return None

    def give(self, arr: np.ndarray) -> None:
        """Return an array the caller no longer references."""
        if not isinstance(arr, np.ndarray) or not arr.flags.owndata \
                or not arr.flags.c_contiguous:
            return
        key = (arr.shape, arr.dtype.str)
        bucket = self._store.setdefault(key, [])
        if len(bucket) < self.max_per_key:
            bucket.append(arr)

    def clear(self) -> None:
        self._store.clear()

    def nbytes(self) -> int:
        """Bytes currently parked in the pool (a resident-memory metric)."""
        return sum(a.nbytes for bucket in self._store.values() for a in bucket)

    def __len__(self) -> int:
        return sum(len(b) for b in self._store.values())


#: The engine-wide gradient pool used by ``Tensor.backward``.
GRAD_POOL = ArrayPool()
