"""Standardization (z-score) fitted on the training portion.

The paper's Algorithm 1 normalises with the training mean and standard
deviation so "each node contributes equally to the model's predictions".
We standardize per feature channel, which generalises the DCRNN reference's
single-channel scaler to multi-feature datasets.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ShapeError


class StandardScaler:
    """Per-feature z-score scaler for ``[..., features]`` arrays."""

    def __init__(self, mean: np.ndarray | None = None,
                 std: np.ndarray | None = None):
        self.mean_ = None if mean is None else np.asarray(mean, dtype=np.float64)
        self.std_ = None if std is None else np.asarray(std, dtype=np.float64)

    @property
    def fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        """Fit over every axis except the last (feature) axis."""
        data = np.asarray(data)
        if data.ndim < 2:
            raise ShapeError("scaler expects at least [entries, features]")
        axes = tuple(range(data.ndim - 1))
        self.mean_ = data.mean(axis=axes, dtype=np.float64)
        std = data.std(axis=axes, dtype=np.float64)
        # Constant channels (e.g. an all-zero feature) must not divide by 0.
        self.std_ = np.where(std > 0, std, 1.0)
        return self

    def _check(self) -> None:
        if not self.fitted:
            raise RuntimeError("scaler used before fit()")

    def transform(self, data: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Standardize; pass ``out=data`` for in-place (index-batching does)."""
        self._check()
        data = np.asarray(data)
        mean = self.mean_.astype(data.dtype)
        std = self.std_.astype(data.dtype)
        if out is None:
            return (data - mean) / std
        np.subtract(data, mean, out=out)
        np.divide(out, std, out=out)
        return out

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check()
        data = np.asarray(data)
        return data * self.std_.astype(data.dtype) + self.mean_.astype(data.dtype)

    def inverse_transform_channel(self, data: np.ndarray, channel: int) -> np.ndarray:
        """Undo scaling for a single feature channel (predictions usually
        cover only the primary signal channel)."""
        self._check()
        return data * float(self.std_[channel]) + float(self.mean_[channel])
