"""Index-batching for dynamic graphs with temporal signal.

Extends :class:`~repro.preprocessing.index_batching.IndexDataset` with an
adjacency dimension: snapshots carry, besides the zero-copy signal views,
the *support matrices in force* over the window.  Supports are built once
per adjacency epoch and shared across every snapshot that touches the
epoch — the same deduplication idea the paper applies to signal windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.datasets.dynamic import DynamicGraphDataset
from repro.graph.supports import dual_random_walk_supports
from repro.preprocessing.index_batching import IndexDataset


@dataclass
class DynamicIndexDataset:
    """Index-batched signals plus an epoch-indexed support cache."""

    signal: IndexDataset
    epoch_of_entry: np.ndarray
    supports_by_epoch: list[list[sp.csr_matrix]]

    @classmethod
    def from_dynamic(cls, dyn: DynamicGraphDataset, horizon: int | None = None,
                     *, dtype=np.float64) -> "DynamicIndexDataset":
        signal = IndexDataset.from_dataset(dyn.base, horizon=horizon,
                                           dtype=dtype)
        supports = [dual_random_walk_supports(a) for a in dyn.adjacencies]
        return cls(signal=signal, epoch_of_entry=dyn.epoch_of_entry,
                   supports_by_epoch=supports)

    @property
    def horizon(self) -> int:
        return self.signal.horizon

    @property
    def num_snapshots(self) -> int:
        return self.signal.num_snapshots

    def snapshot(self, start: int):
        """(x view, y view, supports at the window's *last input step*).

        Models condition on the graph as of prediction time, the standard
        convention for dynamic-graph forecasting.
        """
        x, y = self.signal.snapshot(start)
        epoch = int(self.epoch_of_entry[start + self.horizon - 1])
        return x, y, self.supports_by_epoch[epoch]

    def gather_by_epoch(self, starts: np.ndarray):
        """Group a batch by adjacency epoch.

        Yields ``(supports, x, y)`` sub-batches; grouping lets a model run
        one sparse-matmul set per distinct adjacency rather than per
        sample.
        """
        starts = np.asarray(starts)
        epochs = self.epoch_of_entry[starts + self.horizon - 1]
        for epoch in np.unique(epochs):
            sel = starts[epochs == epoch]
            x, y = self.signal.gather(sel)
            yield self.supports_by_epoch[int(epoch)], x, y

    def resident_nbytes(self) -> int:
        sup = sum(s.data.nbytes + s.indices.nbytes + s.indptr.nbytes
                  for epoch in self.supports_by_epoch for s in epoch)
        return self.signal.resident_nbytes + sup + self.epoch_of_entry.nbytes
