"""The standard sliding-window pipeline (paper Algorithm 1).

This is the memory-hungry baseline: it materialises every overlapping
``x`` and ``y`` window, duplicating each raw entry up to ``2 * horizon``
times.  When a :class:`~repro.hardware.memory.MemorySpace` is supplied,
every materialisation is charged against it — at full PeMS scale the
charges exceed a Polaris node's 512 GB during window stacking and raise
:class:`~repro.utils.errors.OutOfMemoryError`, exactly where the paper's
Figure 2 shows the crash.

The allocation sequence mirrors the open-source implementations the paper
profiles (Li et al.'s ``generate_training_data.py`` / PGT's loaders):

1. raw file tensor, then the augmented copy with the time-of-day channel;
2. ``x``/``y`` window lists appended in one loop (both alive together);
3. ``np.stack`` materialises each stacked array while its list is alive;
4. ``(x - mu) / sigma`` allocates a subtraction temporary plus the result;
5. train/val/test splits are materialised as separate arrays (the
   reference writes and reloads ``train.npz``/``val.npz``/``test.npz``).

Deviation from Algorithm 1 as printed: by default the scaler is fitted on
the *raw entries covered by training windows* rather than on the stacked
``x_train`` (``stat_mode="raw"``).  The stacked version weights interior
entries ``horizon`` times more than boundary entries; raw statistics make
standard preprocessing *bitwise identical* to index-batching, which is the
equivalence the paper relies on.  ``stat_mode="stacked"`` reproduces the
literal Algorithm 1; the statistics differ only by ``O(horizon/entries)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import SpatioTemporalDataset
from repro.hardware.memory import Allocation, MemorySpace
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.windows import num_snapshots, split_bounds, window_starts


@dataclass
class StandardPreprocessed:
    """Output of the standard pipeline: six stacked arrays plus the scaler.

    Array shapes are ``[snapshots, horizon, nodes, features]``.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    scaler: StandardScaler
    horizon: int
    allocations: list[Allocation] = field(default_factory=list)

    def split(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        if name == "train":
            return self.x_train, self.y_train
        if name == "val":
            return self.x_val, self.y_val
        if name == "test":
            return self.x_test, self.y_test
        raise KeyError(f"unknown split {name!r}")

    @property
    def total_nbytes(self) -> int:
        return sum(a.nbytes for a in (self.x_train, self.y_train, self.x_val,
                                      self.y_val, self.x_test, self.y_test))

    def release(self, space: MemorySpace) -> None:
        """Free the pipeline's live allocations from ``space``."""
        for alloc in self.allocations:
            space.free(alloc)
        self.allocations.clear()


class _Charger:
    """Track (and on request replay without data) pipeline allocations."""

    def __init__(self, space: MemorySpace | None):
        self.space = space
        self.live: list[Allocation] = []

    def alloc(self, label: str, nbytes: int) -> Allocation | None:
        if self.space is None:
            return None
        a = self.space.allocate(label, int(nbytes))
        self.live.append(a)
        return a

    def free(self, alloc: Allocation | None) -> None:
        if self.space is not None and alloc is not None:
            self.space.free(alloc)
            self.live.remove(alloc)


def standard_preprocess(dataset: SpatioTemporalDataset,
                        horizon: int | None = None,
                        *,
                        dtype=np.float64,
                        ratios: tuple[float, float, float] = (0.7, 0.1, 0.2),
                        stat_mode: str = "raw",
                        add_time_feature: bool | None = None,
                        space: MemorySpace | None = None) -> StandardPreprocessed:
    """Run Algorithm 1: augment, window, stack, standardize, split.

    Parameters
    ----------
    horizon: window/forecast length; defaults to the dataset spec's value.
    stat_mode: ``"raw"`` (default, index-batching-equivalent) or
        ``"stacked"`` (literal Algorithm 1 statistics).
    add_time_feature: append the time-of-day channel (stage 1 of Fig. 3);
        defaults to True for traffic datasets.
    space: optional memory space charged for every materialisation.
    """
    if stat_mode not in ("raw", "stacked"):
        raise ValueError(f"stat_mode must be 'raw' or 'stacked', got {stat_mode!r}")
    h = dataset.spec.horizon if horizon is None else int(horizon)
    if add_time_feature is None:
        add_time_feature = dataset.spec.domain == "traffic"
    ch = _Charger(space)

    # Stages 0/1: raw file + time-of-day augmentation.
    raw_a = ch.alloc("raw", dataset.signals.nbytes)
    if add_time_feature:
        data = dataset.with_time_feature().astype(dtype, copy=False)
    else:
        data = dataset.signals.astype(dtype, copy=True)
    aug_a = ch.alloc("augmented", data.nbytes)

    entries = data.shape[0]
    n_snap = num_snapshots(entries, h)
    starts = window_starts(entries, h)
    snap_bytes = n_snap * h * int(np.prod(data.shape[1:])) * data.dtype.itemsize

    # Stage 2: one loop appends x and y window copies to two lists.
    x_list_a = ch.alloc("x-window-list", snap_bytes)
    y_list_a = ch.alloc("y-window-list", snap_bytes)
    x_windows = [data[s: s + h].copy() for s in starts]
    y_windows = [data[s + h: s + 2 * h].copy() for s in starts]

    # Stage 2b: stacking (list alive while its stack materialises).
    x_stack_a = ch.alloc("x-stacked", snap_bytes)
    x = np.stack(x_windows, axis=0)
    x_windows = None
    ch.free(x_list_a)
    y_stack_a = ch.alloc("y-stacked", snap_bytes)
    y = np.stack(y_windows, axis=0)
    y_windows = None
    ch.free(y_list_a)

    # Standardization statistics from the training portion.
    train_end, val_end = split_bounds(n_snap, ratios)
    scaler = StandardScaler()
    if stat_mode == "stacked":
        scaler.fit(x[:train_end])
    else:
        scaler.fit(data[: train_end - 1 + h])

    # `(x - mu) / sigma` allocates a subtraction temporary plus the result.
    tmp_a = ch.alloc("std-temp", snap_bytes)
    x_std_a = ch.alloc("x-standardized", snap_bytes)
    x = scaler.transform(x)
    ch.free(tmp_a)
    ch.free(x_stack_a)
    tmp_a = ch.alloc("std-temp", snap_bytes)
    y_std_a = ch.alloc("y-standardized", snap_bytes)
    y = scaler.transform(y)
    ch.free(tmp_a)
    ch.free(y_stack_a)
    ch.free(raw_a)
    ch.free(aug_a)

    # Stage 3: materialised split copies (the reference writes npz files
    # per split and reloads them).
    splits_a = ch.alloc("split-copies", 2 * snap_bytes)
    parts = {
        "x_train": np.ascontiguousarray(x[:train_end]),
        "y_train": np.ascontiguousarray(y[:train_end]),
        "x_val": np.ascontiguousarray(x[train_end:val_end]),
        "y_val": np.ascontiguousarray(y[train_end:val_end]),
        "x_test": np.ascontiguousarray(x[val_end:]),
        "y_test": np.ascontiguousarray(y[val_end:]),
    }
    ch.free(x_std_a)
    ch.free(y_std_a)

    return StandardPreprocessed(scaler=scaler, horizon=h,
                                allocations=list(ch.live), **parts)
