"""Sliding-window arithmetic shared by both preprocessing pipelines.

A snapshot with window start ``s`` and horizon ``h`` is the pair

    x = data[s : s + h]            (input sequence)
    y = data[s + h : s + 2h]       (target sequence)

Valid starts are ``0 .. entries - 2h``, so the number of snapshots is
``entries - (2h - 1)`` — the count that appears in the paper's eq. (1) and
eq. (2).
"""

from __future__ import annotations

import numpy as np

DEFAULT_SPLIT = (0.70, 0.10, 0.20)


def num_snapshots(entries: int, horizon: int) -> int:
    """Number of valid ``(x, y)`` snapshot pairs."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    n = entries - (2 * horizon - 1)
    if n < 1:
        raise ValueError(
            f"{entries} entries cannot fit a single window of horizon {horizon}")
    return n


def window_starts(entries: int, horizon: int) -> np.ndarray:
    """All valid window-start indices (the paper's array of graph IDs)."""
    return np.arange(num_snapshots(entries, horizon), dtype=np.int64)


def split_bounds(n_snapshots: int,
                 ratios: tuple[float, float, float] = DEFAULT_SPLIT
                 ) -> tuple[int, int]:
    """Snapshot-index boundaries for the train/val/test split.

    Returns ``(train_end, val_end)``; the splits are
    ``[0, train_end)``, ``[train_end, val_end)``, ``[val_end, n)``.
    Follows the paper's default 70/10/20 split (Algorithm 1 uses
    ``round(len(x) * 0.70)``).
    """
    if len(ratios) != 3 or abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must be three values summing to 1, got {ratios}")
    if min(ratios) < 0:
        raise ValueError("ratios must be non-negative")
    train_end = round(n_snapshots * ratios[0])
    val_end = train_end + round(n_snapshots * ratios[1])
    train_end = min(max(train_end, 0), n_snapshots)
    val_end = min(max(val_end, train_end), n_snapshots)
    return train_end, val_end
