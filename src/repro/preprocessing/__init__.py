"""Spatiotemporal preprocessing: standard (Algorithm 1) and index-batching.

This package implements the paper's core contribution.  The *standard*
pipeline materialises every overlapping ``(x, y)`` snapshot produced by
sliding-window analysis (SWA), duplicating each raw entry up to
``2 * horizon`` times; *index-batching* stores a single standardized copy of
the augmented data plus an array of window-start indices, and reconstructs
snapshots at runtime as NumPy views.
"""

from repro.preprocessing.windows import (
    num_snapshots,
    split_bounds,
    window_starts,
)
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.standard import StandardPreprocessed, standard_preprocess
from repro.preprocessing.index_batching import IndexDataset
from repro.preprocessing.memory_model import (
    figure3_stages,
    index_nbytes,
    standard_preprocessed_nbytes,
    simulate_index_pipeline,
    simulate_standard_pipeline,
)

__all__ = [
    "num_snapshots",
    "window_starts",
    "split_bounds",
    "StandardScaler",
    "standard_preprocess",
    "StandardPreprocessed",
    "IndexDataset",
    "standard_preprocessed_nbytes",
    "index_nbytes",
    "figure3_stages",
    "simulate_standard_pipeline",
    "simulate_index_pipeline",
]
