"""Analytic and mechanistic memory models for both pipelines.

Two layers:

1. **Closed forms** — the paper's eq. (1) (standard preprocessing size) and
   eq. (2) (index-batching size), in bytes, plus the stage-by-stage growth
   of Figure 3.  These reproduce Table 1 exactly from the catalog shapes.
2. **Mechanistic simulators** — replay the *allocation sequence* of the real
   pipelines (`standard_preprocess` / `IndexDataset.from_dataset`) against a
   :class:`~repro.hardware.memory.MemorySpace` using full-scale shapes but
   without touching real data.  A unit test pins the simulators to the real
   pipelines by comparing event logs on small inputs; the experiment harness
   then runs them at PeMS scale to regenerate Figures 2/6 and the OOM
   behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.catalog import DatasetSpec
from repro.hardware.memory import Allocation, MemorySpace
from repro.preprocessing.windows import num_snapshots

INDEX_DTYPE_BYTES = 8  # int64 window-start indices


def standard_preprocessed_nbytes(entries: int, nodes: int, features: int,
                                 horizon: int, dtype=np.float64) -> int:
    """Paper eq. (1): bytes of the stacked ``x`` and ``y`` arrays."""
    item = np.dtype(dtype).itemsize
    return 2 * num_snapshots(entries, horizon) * horizon * nodes * features * item


def index_nbytes(entries: int, nodes: int, features: int, horizon: int,
                 dtype=np.float64) -> int:
    """Paper eq. (2): bytes of one data copy plus the index array."""
    item = np.dtype(dtype).itemsize
    return (entries * nodes * features * item
            + num_snapshots(entries, horizon) * INDEX_DTYPE_BYTES)


def table1_sizes(spec: DatasetSpec, dtype=np.float64) -> tuple[int, int]:
    """(size before, size after) preprocessing for a catalog dataset.

    "Before" is the raw file tensor; "after" is eq. (1) with the training
    feature count (time-of-day included for traffic data).
    """
    before = spec.raw_nbytes(dtype)
    after = standard_preprocessed_nbytes(spec.num_entries, spec.num_nodes,
                                         spec.train_features, spec.horizon,
                                         dtype)
    return before, after


def figure3_stages(spec: DatasetSpec, dtype=np.float64) -> dict[str, int]:
    """The data-growth stages of Figure 3 (shown for PeMS-All-LA).

    Stage 1: time-of-day appended as an extra channel.
    Stage 2: sliding-window analysis materialises the ``x`` windows.
    Stage 3: the matching ``y`` windows double it (train/val/test split is
    by slicing and adds no bytes).
    """
    item = np.dtype(dtype).itemsize
    raw = spec.raw_nbytes(dtype)
    augmented = spec.num_entries * spec.num_nodes * spec.train_features * item
    n_snap = num_snapshots(spec.num_entries, spec.horizon)
    swa = n_snap * spec.horizon * spec.num_nodes * spec.train_features * item
    xy = 2 * swa
    return {"raw": raw, "stage1_time_feature": augmented,
            "stage2_swa": swa, "stage3_xy_split": xy}


# ---------------------------------------------------------------------------
# Mechanistic pipeline simulators
# ---------------------------------------------------------------------------
@dataclass
class PipelineFootprint:
    """Result of a simulated pipeline: peak bytes and what stays resident."""

    peak: int
    resident: int
    live: list[Allocation]


def _shape_bytes(spec: DatasetSpec, features: int, dtype) -> int:
    return spec.num_entries * spec.num_nodes * features * np.dtype(dtype).itemsize


def simulate_standard_pipeline(spec: DatasetSpec, space: MemorySpace, *,
                               horizon: int | None = None,
                               dtype=np.float64,
                               add_time_feature: bool | None = None,
                               keep_stacked: bool = False
                               ) -> PipelineFootprint:
    """Replay ``standard_preprocess``'s allocation sequence at full scale.

    ``keep_stacked`` leaves the standardized x/y arrays live alongside the
    split copies (the original DCRNN workflow's behaviour, where the
    preprocessing script's arrays and the training loader's reloaded splits
    coexist).
    """
    h = spec.horizon if horizon is None else horizon
    if add_time_feature is None:
        add_time_feature = spec.domain == "traffic"
    feats = spec.train_features if add_time_feature else spec.raw_features
    item = np.dtype(dtype).itemsize

    raw = space.allocate("raw", _shape_bytes(spec, spec.raw_features, dtype))
    aug = space.allocate("augmented", _shape_bytes(spec, feats, dtype))
    snap_bytes = num_snapshots(spec.num_entries, h) * h * spec.num_nodes * feats * item

    x_list = space.allocate("x-window-list", snap_bytes)
    y_list = space.allocate("y-window-list", snap_bytes)
    x_stack = space.allocate("x-stacked", snap_bytes)
    space.free(x_list)
    y_stack = space.allocate("y-stacked", snap_bytes)
    space.free(y_list)

    tmp = space.allocate("std-temp", snap_bytes)
    x_std = space.allocate("x-standardized", snap_bytes)
    space.free(tmp)
    space.free(x_stack)
    tmp = space.allocate("std-temp", snap_bytes)
    y_std = space.allocate("y-standardized", snap_bytes)
    space.free(tmp)
    space.free(y_stack)
    space.free(raw)
    space.free(aug)

    splits = space.allocate("split-copies", 2 * snap_bytes)
    live = [splits]
    if keep_stacked:
        live = [x_std, y_std, splits]
    else:
        space.free(x_std)
        space.free(y_std)
    return PipelineFootprint(peak=space.peak, resident=space.in_use, live=live)


def simulate_index_pipeline(spec: DatasetSpec, space: MemorySpace, *,
                            horizon: int | None = None,
                            dtype=np.float64,
                            add_time_feature: bool | None = None
                            ) -> PipelineFootprint:
    """Replay ``IndexDataset.from_dataset``'s allocation sequence."""
    h = spec.horizon if horizon is None else horizon
    if add_time_feature is None:
        add_time_feature = spec.domain == "traffic"
    feats = spec.train_features if add_time_feature else spec.raw_features

    raw = space.allocate("raw", _shape_bytes(spec, spec.raw_features, dtype))
    aug = space.allocate("augmented", _shape_bytes(spec, feats, dtype))
    idx = space.allocate("start-indices",
                         num_snapshots(spec.num_entries, h) * INDEX_DTYPE_BYTES)
    scratch = space.allocate("standardize-scratch",
                             _shape_bytes(spec, feats, dtype))
    space.free(scratch)
    space.free(raw)
    return PipelineFootprint(peak=space.peak, resident=space.in_use,
                             live=[aug, idx])


def simulate_gpu_index_pipeline(spec: DatasetSpec, host: MemorySpace,
                                gpu: MemorySpace, *,
                                horizon: int | None = None,
                                dtype=np.float64,
                                add_time_feature: bool | None = None
                                ) -> tuple[PipelineFootprint, PipelineFootprint]:
    """GPU-index-batching (§4.1): one host->device copy, then on-device prep.

    Host holds the raw file plus a staging copy for the transfer; the GPU
    holds the raw copy, builds the augmented array, standardizes in place,
    and keeps the data resident for the whole training run.
    Returns (host footprint, gpu footprint).
    """
    h = spec.horizon if horizon is None else horizon
    if add_time_feature is None:
        add_time_feature = spec.domain == "traffic"
    feats = spec.train_features if add_time_feature else spec.raw_features
    raw_bytes = _shape_bytes(spec, spec.raw_features, dtype)

    raw = host.allocate("raw", raw_bytes)
    staging = host.allocate("pinned-staging", raw_bytes)
    raw_dev = gpu.allocate("raw-device", raw_bytes)
    host.free(staging)
    host.free(raw)

    aug = gpu.allocate("augmented-device", _shape_bytes(spec, feats, dtype))
    gpu.free(raw_dev)
    idx = gpu.allocate("start-indices",
                       num_snapshots(spec.num_entries, h) * INDEX_DTYPE_BYTES)
    scratch = gpu.allocate("standardize-scratch", _shape_bytes(spec, feats, dtype))
    gpu.free(scratch)
    return (PipelineFootprint(peak=host.peak, resident=host.in_use, live=[]),
            PipelineFootprint(peak=gpu.peak, resident=gpu.in_use, live=[aug, idx]))


def simulate_dcrnn_loader(spec: DatasetSpec, space: MemorySpace, *,
                          horizon: int | None = None,
                          dtype=np.float64, batch_size: int = 32
                          ) -> PipelineFootprint:
    """The original DCRNN implementation's loader on top of the standard
    pipeline.

    Li et al.'s ``DataLoader`` pads the dataset to a multiple of the batch
    size and keeps the padded copies *in addition to* the originals — the
    paper identifies this as the source of DCRNN's extra ~110 GB on
    PeMS-All-LA (Table 2).  The preprocessing arrays also stay referenced
    alongside the reloaded splits (``keep_stacked=True``).
    """
    h = spec.horizon if horizon is None else horizon
    foot = simulate_standard_pipeline(spec, space, horizon=h, dtype=dtype,
                                      keep_stacked=True)
    n_snap = num_snapshots(spec.num_entries, h)
    pad = (-n_snap) % batch_size
    item = np.dtype(dtype).itemsize
    padded = (n_snap + pad) * h * spec.num_nodes * spec.train_features * item
    x_pad = space.allocate("x-padded-copy", padded)
    y_pad = space.allocate("y-padded-copy", padded)
    return PipelineFootprint(peak=space.peak, resident=space.in_use,
                             live=foot.live + [x_pad, y_pad])
