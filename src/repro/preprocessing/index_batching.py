"""Index-batching (paper §4.1): the memory-efficient preprocessing pipeline.

Instead of materialising every overlapping window, index-batching keeps

- one standardized copy of the augmented data ``[entries, nodes, features]``
- an ``int64`` array of window-start indices (the "graph IDs" of Fig. 4)

and reconstructs any snapshot at runtime as a pair of NumPy **views**::

    x = data[start : start + horizon]
    y = data[start + horizon : start + 2 * horizon]

Views share the base array's memory, so snapshot construction allocates
nothing; only batch *gathering* (fancy-indexing a set of starts into a
contiguous ``[batch, horizon, nodes, features]`` block) copies, and that
copy is the batch the model consumes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import SpatioTemporalDataset
from repro.hardware.memory import Allocation, MemorySpace
from repro.kernels.precision import resolve_store_dtype
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.windows import num_snapshots, split_bounds, window_starts
from repro.utils.errors import ShapeError


@dataclass
class IndexDataset:
    """A preprocessed dataset in index-batching form.

    ``data`` is the single standardized array; ``starts`` holds every valid
    window start; ``train_end``/``val_end`` delimit the splits over
    ``starts``.  Use :meth:`snapshot` for zero-copy access and
    :meth:`gather` to assemble training batches.
    """

    data: np.ndarray
    starts: np.ndarray
    horizon: int
    scaler: StandardScaler
    train_end: int
    val_end: int
    allocations: list[Allocation] = field(default_factory=list)
    _offsets: np.ndarray | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: SpatioTemporalDataset,
                     horizon: int | None = None, *,
                     dtype=np.float64,
                     store_dtype=None,
                     ratios: tuple[float, float, float] = (0.7, 0.1, 0.2),
                     add_time_feature: bool | None = None,
                     space: MemorySpace | None = None) -> "IndexDataset":
        """Build from a raw dataset: augment once, standardize in place.

        The peak charge against ``space`` is raw + augmented + one
        standardization scratch copy — compare the standard pipeline, whose
        peak includes two full window stacks (``2 * horizon`` larger).

        ``store_dtype`` downcasts the standardized array after fitting
        (statistics and standardization still run in ``dtype``).  Passing
        ``np.float32`` stores the data at training dtype, so batch
        gathering feeds the model directly with no per-batch cast and the
        resident copy halves; the stored values are exactly the old
        float64-standardized values rounded once to float32, i.e. bitwise
        what the loaders used to produce per batch.  Mixed-precision
        storage goes one step further: ``store_dtype="float16"`` (or
        ``"bfloat16"`` with the optional ml_dtypes package) halves the
        resident copy again while the loaders keep computing in float32 —
        every gather lands in the loader's float32 ``out=`` buffer, so
        only storage precision changes, never model math.
        """
        h = dataset.spec.horizon if horizon is None else int(horizon)
        if add_time_feature is None:
            add_time_feature = dataset.spec.domain == "traffic"
        live: list[Allocation] = []

        def charge(label: str, nbytes: int) -> Allocation | None:
            if space is None:
                return None
            alloc = space.allocate(label, nbytes)
            live.append(alloc)
            return alloc

        def uncharge(alloc: Allocation | None) -> None:
            if space is not None and alloc is not None:
                space.free(alloc)
                live.remove(alloc)

        raw_alloc = charge("raw", dataset.signals.nbytes)
        if add_time_feature:
            data = dataset.with_time_feature().astype(dtype, copy=False)
        else:
            data = dataset.signals.astype(dtype, copy=True)
        aug_alloc = charge("augmented", data.nbytes)

        entries = data.shape[0]
        n_snap = num_snapshots(entries, h)
        starts = window_starts(entries, h)
        idx_alloc = charge("start-indices", starts.nbytes)

        train_end, val_end = split_bounds(n_snap, ratios)
        scaler = StandardScaler().fit(data[: train_end - 1 + h])
        # In-place standardization still needs transient scratch for the
        # subtraction's broadcasted operand in real NumPy; we charge a full
        # scratch copy to stay conservative.  Raw stays referenced until
        # preprocessing finishes — together these form the transient spike
        # the paper's Figure 6 shows (~46 GB for PeMS), after which usage
        # settles at the single augmented copy (~18 GB).
        scratch = charge("standardize-scratch", data.nbytes)
        scaler.transform(data, out=data)
        uncharge(scratch)
        uncharge(raw_alloc)

        store_dtype = resolve_store_dtype(store_dtype)
        if store_dtype is not None and store_dtype != data.dtype:
            store = data.astype(store_dtype)
            store_alloc = charge("store-cast", store.nbytes)
            uncharge(aug_alloc)
            data, aug_alloc = store, store_alloc

        allocations = [a for a in (aug_alloc, idx_alloc) if a is not None]
        for a in allocations:
            live.remove(a)
        return cls(data=data, starts=starts, horizon=h, scaler=scaler,
                   train_end=train_end, val_end=val_end,
                   allocations=allocations)

    def __post_init__(self):
        if self.data.ndim != 3:
            raise ShapeError(
                f"data must be [entries, nodes, features], got {self.data.shape}")
        if not 0 <= self.train_end <= self.val_end <= len(self.starts):
            raise ShapeError("split bounds out of order")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_snapshots(self) -> int:
        return len(self.starts)

    @property
    def num_nodes(self) -> int:
        return self.data.shape[1]

    @property
    def num_features(self) -> int:
        return self.data.shape[2]

    def split_starts(self, split: str) -> np.ndarray:
        """Window starts belonging to a split (a view of ``starts``)."""
        if split == "train":
            return self.starts[: self.train_end]
        if split == "val":
            return self.starts[self.train_end: self.val_end]
        if split == "test":
            return self.starts[self.val_end:]
        raise KeyError(f"unknown split {split!r}")

    def snapshot(self, start: int) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct snapshot ``start`` as two zero-copy views."""
        h = self.horizon
        if not 0 <= start < self.num_snapshots:
            raise IndexError(f"start {start} out of range [0, {self.num_snapshots})")
        x = self.data[start: start + h]
        y = self.data[start + h: start + 2 * h]
        return x, y

    def gather(self, starts: np.ndarray,
               space: MemorySpace | None = None,
               out: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Assemble a batch ``[len(starts), horizon, nodes, features]``.

        This is the only copying step in index-batching; the copy is the
        batch tensor itself.  The ``x`` and ``y`` windows of one start
        overlap end to end, so a single fancy-index of width
        ``2 * horizon`` fills both and the returned pair are views of that
        block.  When ``out`` (shape ``[len(starts), 2 * horizon, nodes,
        features]``, data dtype) is given, the gather writes into it and
        allocates nothing — loaders pass a persistent buffer here every
        step.  When ``space`` is given, the batch bytes are charged (and
        freed: the batch lives only for the step, so only peak counts).
        """
        starts = np.asarray(starts)
        h = self.horizon
        if self._offsets is None or len(self._offsets) != 2 * h:
            self._offsets = np.arange(2 * h)
        idx = starts[:, None] + self._offsets[None, :]
        if out is None:
            block = self.data[idx]
        else:
            expected = (len(starts), 2 * h) + self.data.shape[1:]
            if out.shape != expected or out.dtype != self.data.dtype:
                raise ShapeError(
                    f"gather out buffer must be {expected} {self.data.dtype}, "
                    f"got {out.shape} {out.dtype}")
            if len(starts) and (int(starts.min()) < 0 or
                                int(starts.max()) + 2 * h > len(self.data)):
                raise IndexError("gather starts out of range")
            # mode="clip" skips np.take's internal bounce buffer; the
            # bounds check above keeps out-of-range starts loud.
            np.take(self.data, idx.reshape(-1), axis=0,
                    out=out.reshape((-1,) + self.data.shape[1:]), mode="clip")
            block = out
        x = block[:, :h]
        y = block[:, h:]
        if space is not None:
            alloc = space.allocate("batch", x.nbytes + y.nbytes)
            space.free(alloc)  # batch lives only for the step; charge peak
        return x, y

    def materialize_split(self, split: str) -> tuple[np.ndarray, np.ndarray]:
        """Materialise an entire split (testing/verification only)."""
        return self.gather(self.split_starts(split))

    @property
    def resident_nbytes(self) -> int:
        """Bytes held long-term: the data array plus the index array."""
        return self.data.nbytes + self.starts.nbytes

    def release(self, space: MemorySpace) -> None:
        for alloc in self.allocations:
            space.free(alloc)
        self.allocations.clear()
