"""Multi-tenant gateway: two models, two tenants, one front door.

The production story on top of online serving:

1. train two tiny forecasters (PGT-DCRNN and DCRNN) and register them as
   named, version-pinned **deployments** behind one ``Gateway``;
2. onboard two **tenants** — ``ops`` (unlimited) and ``research``
   (token-bucket quota) — each with its own API key and private feature
   store;
3. serve mixed per-tenant traffic with the seeded load generator and a
   TTL **result cache** (hits bitwise-equal to recomputation);
4. **blue-green swap** the main deployment to a new checkpoint version
   mid-traffic: in-flight requests drain, nothing is dropped;
5. slam the gateway with a 10x **overload burst** and watch admission
   control shed deterministically instead of blowing every deadline.

Run:  python examples/gateway.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.api import RunSpec, build_gateway, run
from repro.serving import GatewayLoadGenerator, ManualClock, TenantStream
from repro.training.checkpoint import save_checkpoint
from repro.utils.seeding import seed_everything


def main(scale: str = "tiny", epochs: int = 2, requests: int = 200) -> None:
    seed_everything(0)

    # 1. Two models, one gateway.  A synthetic service-time model keeps
    # the whole run bit-reproducible (batch of n costs 0.4 + 0.2n ms).
    spec_a = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                     batching="index", scale=scale, seed=0, epochs=epochs)
    spec_b = RunSpec(dataset="pems-bay", model="dcrnn",
                     batching="index", scale=scale, seed=0, epochs=epochs)
    result_a, result_b = run(spec_a), run(spec_b)
    print(f"trained bay={type(result_a.artifacts.model).__name__} "
          f"(val MAE {result_a.best_val_mae:.2f}), "
          f"bay-lite={type(result_b.artifacts.model).__name__} "
          f"(val MAE {result_b.best_val_mae:.2f})")

    gw = build_gateway(
        {"bay": result_a, "bay-lite": result_b},
        tenants=["ops", {"tenant_id": "research", "rate_qps": 200.0,
                         "burst": 8}],
        clock=ManualClock(), max_batch=8, max_wait=0.002,
        service_time=lambda n: 4e-4 + 2e-4 * n, cache_ttl=30.0)
    print(f"gateway up: deployments {gw.deployments.names()}, "
          f"tenants ops (unlimited) + research (200 qps quota)")

    # v2 for the swap later: a self-describing checkpoint of the same
    # model (in production: tomorrow's retrain).
    ckpt = os.path.join(tempfile.mkdtemp(prefix="repro-gw-"), "bay-v2.npz")
    save_checkpoint(ckpt, result_a.artifacts.model,
                    epoch=result_a.epochs_run, spec=spec_a,
                    scaler=result_a.artifacts.loaders.scaler)

    # 2-3. Mixed tenant traffic through one merged open-loop timeline.
    test = result_a.artifacts.loaders.test
    pool = test.batch_at(np.arange(min(test.num_snapshots, 32)))[0].copy()
    gen = GatewayLoadGenerator(gw, pool, seed=0)
    report = gen.open_loop([
        TenantStream(api_key="key-ops", deployment="bay",
                     rate_qps=600.0, requests=(7 * requests) // 10,
                     deadline=0.05),
        TenantStream(api_key="key-research", deployment="bay-lite",
                     rate_qps=150.0, requests=(3 * requests) // 10,
                     deadline=0.05),
    ], scenario="steady")
    print(report.summary())
    for tenant, t in sorted(report.per_tenant.items()):
        print(f"  {tenant}: {t['completed']}/{t['requests']} answered, "
              f"{t['cache_hits']} cache hits, {t['quota_rejected']} over "
              f"quota, p99 {t['latency_p99'] * 1e3:.2f} ms")
    print(f"  result cache: {gw.cache.stats.hits} hits / "
          f"{gw.cache.stats.misses} misses "
          f"({gw.cache.stats.hit_rate:.0%} hit rate)")

    # 4. Blue-green swap mid-traffic: queue a partial batch on v1, flip
    # to the v2 checkpoint.  The blue queue drains first — the swap
    # record proves nothing in flight was dropped.  (Drop the cache
    # entries first so these requests genuinely queue on blue.)
    gw.cache.invalidate("bay")
    for i in range(5):
        gw.submit("key-ops", "bay", pool[i])
    record = gw.swap("bay", ckpt, version="v2")
    gw.poll()
    print(f"blue-green swap {record.old_version} -> {record.new_version}: "
          f"{record.drained} in-flight drained, {record.dropped} dropped")
    check = gw.request("key-ops", "bay", pool[0])
    print(f"  post-swap request served by {check.deployment}@{check.version}")

    # 5. Overload burst: 3x the deployment's ~4000 qps capacity with a
    # tight deadline, through a cache-free gateway so every request costs
    # real compute.  Admission control projects each arrival's completion
    # and sheds the ones that cannot make it — goodput holds at capacity
    # instead of collapsing.
    gw_burst = build_gateway(
        {"bay": result_a}, tenants=["ops"], clock=ManualClock(),
        max_batch=8, max_wait=0.002,
        service_time=lambda n: 4e-4 + 2e-4 * n, cache_ttl=None)
    burst = GatewayLoadGenerator(gw_burst, pool, seed=0).open_loop([
        TenantStream(api_key="key-ops", deployment="bay",
                     rate_qps=12000.0, requests=2 * requests,
                     deadline=0.010),
    ], scenario="overload")
    print(burst.summary())
    print(f"  shed by reason: {gw_burst.admission.shed_by_reason()}; "
          f"admitted requests missed {burst.deadline_misses} deadlines")


if __name__ == "__main__":
    main()
