"""Online serving: train tiny -> checkpoint -> serve -> query.

The full life of a forecast model, end to end in one process:

1. train a tiny PGT-DCRNN through ``repro.api.run``;
2. write a **self-describing checkpoint** (parameters + the ``RunSpec``
   + the fitted scaler), so serving needs nothing but the file;
3. bring it online with ``repro.api.serve`` — a micro-batching
   ``ForecastService`` over a restored ``ModelSession``;
4. stream observations into the sliding-window feature store and
   forecast from live state;
5. re-serve the same checkpoint sharded (graph-partitioned workers with
   halo exchange) and check the predictions agree;
6. measure QPS and p50/p95/p99 latency with the seeded load generator.

Run:  python examples/online_serving.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.api import RunSpec, run, serve
from repro.serving import LoadGenerator
from repro.training.checkpoint import save_checkpoint
from repro.utils.seeding import seed_everything


def main(scale: str = "tiny", epochs: int = 2, requests: int = 200,
         shards: int = 2) -> None:
    seed_everything(0)

    # 1. Train declaratively.
    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale=scale, seed=0, epochs=epochs)
    result = run(spec)
    print(f"trained {result.epochs_run} epochs, best val MAE "
          f"{result.best_val_mae:.2f} mph")

    # 2. Self-describing checkpoint: spec + scaler travel with the weights.
    ckpt = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "model.npz")
    save_checkpoint(ckpt, result.artifacts.model,
                    epoch=result.epochs_run, spec=spec,
                    scaler=result.artifacts.loaders.scaler)
    print(f"checkpoint: {ckpt} ({os.path.getsize(ckpt):,} bytes)")

    # 3. Serve it.  The session rebuilds model + graph from the embedded
    # spec and answers no_grad forwards through persistent buffers.
    svc = serve(ckpt, max_batch=8, max_wait=0.002)
    session = svc.session
    print(f"serving {type(session.model).__name__}: "
          f"{session.num_nodes} sensors, horizon {session.horizon}")

    # 4. Stream observations: replay the tail of the raw signal as if
    # sensors were reporting live, then forecast from the stored window.
    ds = result.artifacts.dataset
    warm = 2 * session.horizon
    for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
        svc.ingest(values, float(ts))
    streamed = svc.forecast_streamed()
    print(f"live forecast from {warm} streamed rows: "
          f"mean {streamed.mean():.1f} mph over the next "
          f"{session.horizon} steps x {session.num_nodes} sensors")

    # A burst of concurrent requests coalesces into fused forwards.
    window = session.current_window()
    for _ in range(8):
        svc.submit(window)
    burst = svc.poll() + svc.flush()
    print(f"burst of 8 requests served in {svc.stats.batches} batch(es), "
          f"mean batch size {svc.stats.mean_batch_size:.1f}")

    # 5. The same checkpoint, sharded: partitioned sensor ownership,
    # byte-accounted halo exchange, identical predictions.
    sharded = serve(ckpt, server="sharded", num_shards=shards,
                    max_batch=8, max_wait=0.002)
    for values, ts in zip(ds.signals[-warm:], ds.timestamps[-warm:]):
        sharded.ingest(values, float(ts))
    merged = sharded.forecast_streamed()
    drift = float(np.max(np.abs(merged - streamed)))
    halo = sharded.session.halo_stats()
    print(f"sharded x{shards}: max |sharded - local| = {drift:.2e}; "
          f"halo traffic {halo['bytes_by_category']} over {halo['ops']} ops")

    # 6. Load test: seeded arrivals, measured service times.
    test = result.artifacts.loaders.test
    pool = test.batch_at(np.arange(test.batch_size))[0].copy()
    bench_svc = serve(ckpt, max_batch=8, max_wait=0.002)
    gen = LoadGenerator(bench_svc, pool, seed=0)
    report = gen.closed_loop(requests=requests, concurrency=8)
    print(report.summary())


if __name__ == "__main__":
    main()
