"""Compare memory behaviour of standard vs index-batching preprocessing.

Reproduces the paper's motivating case study (Section 3) at two levels:

1. *real*: run both pipelines on a small synthetic dataset and measure the
   actual bytes materialised;
2. *full scale*: replay both pipelines' allocation sequences against a
   simulated 512 GB Polaris node for every catalog dataset — including the
   OOM crash on full PeMS that made this paper necessary.

Run:  python examples/memory_comparison.py
"""

from repro.datasets import CATALOG, load_dataset
from repro.hardware.memory import MemorySpace
from repro.hardware.specs import polaris_host
from repro.preprocessing import (
    IndexDataset,
    simulate_index_pipeline,
    simulate_standard_pipeline,
    standard_preprocess,
)
from repro.utils import OutOfMemoryError, format_bytes


def real_small_scale(nodes: int = 32, entries: int = 2000) -> None:
    print("=== real pipelines on a small synthetic dataset ===")
    ds = load_dataset("pems-bay", nodes=nodes, entries=entries, seed=0)
    std_space = MemorySpace("standard")
    standard_preprocess(ds, space=std_space)
    idx_space = MemorySpace("index")
    IndexDataset.from_dataset(ds, space=idx_space)
    print(f"standard: peak {format_bytes(std_space.peak):>10s}, "
          f"resident {format_bytes(std_space.in_use):>10s}")
    print(f"index:    peak {format_bytes(idx_space.peak):>10s}, "
          f"resident {format_bytes(idx_space.in_use):>10s}")
    print(f"peak reduction: {1 - idx_space.peak / std_space.peak:.1%}\n")


def full_scale_simulation() -> None:
    print("=== full-scale pipelines on a simulated Polaris node (512 GB) ===")
    header = f"{'dataset':20s} {'standard peak':>14s} {'index peak':>12s} {'outcome'}"
    print(header)
    print("-" * len(header))
    for name, spec in CATALOG.items():
        std = polaris_host()
        outcome = "both fit"
        try:
            simulate_standard_pipeline(spec, std)
        except OutOfMemoryError:
            outcome = "standard OOMs, index fits"
        idx = polaris_host()
        simulate_index_pipeline(spec, idx)
        print(f"{name:20s} {format_bytes(std.peak):>14s} "
              f"{format_bytes(idx.peak):>12s} {outcome}")


def main(nodes: int = 32, entries: int = 2000) -> None:
    real_small_scale(nodes=nodes, entries=entries)
    full_scale_simulation()


if __name__ == "__main__":
    main()
