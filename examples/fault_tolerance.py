"""Fault tolerance end to end: crash-resume training + serving failover.

Walks the chaos subsystem's two guarantees:

1. **Training** — a distributed run with a scheduled ``rank_crash`` is
   checkpoint-resumed by the recovery loop and finishes with a loss
   curve *bitwise identical* to the uninterrupted run, both through the
   low-level ``train_with_recovery`` API and the declarative
   ``RunSpec(faults=...)`` path.
2. **Serving** — a sharded forecast service loses a worker mid-stream,
   fails over (promoting a standby or re-partitioning the survivors,
   replaying halo state from the observation log), and keeps answering
   with predictions equal to the unsharded session.

Run it::

    PYTHONPATH=src python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro.api import RunSpec, run, serve
from repro.runtime import FaultPlan
from repro.serving import LoadGenerator


def main(*, scale: str = "tiny", epochs: int = 2, world: int = 2,
         crash_step: int = 4, requests: int = 60) -> dict:
    # -- 1. training: crash, recover, reproduce bitwise -----------------
    base = RunSpec(dataset="pems-bay", scale=scale, epochs=epochs,
                   strategy="dist-index", world_size=world)
    clean = run(base)
    print(f"clean run:     curve={['%.4f' % v for v in clean.train_curve]}")

    chaos_spec = base.replace(
        faults=FaultPlan().rank_crash(step=crash_step, rank=1).to_spec())
    chaos = run(chaos_spec)
    bitwise = (chaos.train_curve == clean.train_curve
               and chaos.val_curve == clean.val_curve)
    print(f"chaos run:     curve={['%.4f' % v for v in chaos.train_curve]} "
          f"(restarts={chaos.restarts}, bitwise={bitwise})")
    assert bitwise, "recovery must reproduce the uninterrupted curve"

    # -- 2. serving: kill a shard worker mid-stream ----------------------
    test = clean.artifacts.loaders.test
    pool, _ = test.batch_at(np.arange(test.batch_size))
    pool = pool.copy()
    reference = serve(clean).session.predict(pool).copy()

    plan = FaultPlan().worker_crash(shard=1, at_request=requests // 2)
    svc = serve(clean, server="sharded", num_shards=4, max_batch=8,
                max_wait=0.002, fault_plan=plan,
                service_time=lambda n: 0.0005 + 0.0001 * n)
    report = LoadGenerator(svc, pool, seed=0).closed_loop(
        requests=requests, concurrency=8, scenario="failover-demo")
    parity = float(np.max(np.abs(svc.session.predict(pool) - reference)))
    event = svc.failover_events[0]
    print(f"serving:       {report.requests} reqs at {report.qps:.0f} qps, "
          f"{report.failovers} failover ({event.mode}, "
          f"{event.num_shards_after} shards after) "
          f"p99 {report.failover_p99 * 1e3:.2f} ms, "
          f"post-failover parity err {parity:.1e}")
    assert parity <= 1e-6, "failover must preserve predictions"

    return {"restarts": chaos.restarts, "bitwise": bitwise,
            "failovers": report.failovers, "parity_max_abs_err": parity}


if __name__ == "__main__":
    main()
