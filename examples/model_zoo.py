"""Broader applicability: every model family from the paper on one dataset.

The paper argues index-batching works for *any* sequence-to-sequence
spatiotemporal model (§5.5).  This example trains all five implemented
architectures — DCRNN, PGT-DCRNN, TGCN, A3T-GCN and ST-LLM — on the same
index-batched METR-LA stand-in and compares accuracy and cost.

Run:  python examples/model_zoo.py
"""

import time

import numpy as np

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import A3TGCN, DCRNN, PGTDCRNN, STGCN, STLLM, TGCN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.profiling import format_table
from repro.training import Trainer
from repro.utils.seeding import seed_everything

HORIZON = 6
EPOCHS = 4


def build_models(ds, supports):
    n = ds.graph.num_nodes
    return {
        "DCRNN": DCRNN(supports, HORIZON, 2, hidden_dim=16, num_layers=2),
        "PGT-DCRNN": PGTDCRNN(supports, HORIZON, 2, hidden_dim=16),
        "TGCN": TGCN(ds.graph.weights, HORIZON, 2, hidden_dim=16),
        "A3T-GCN": A3TGCN(ds.graph.weights, HORIZON, 2, hidden_dim=16),
        "STGCN": STGCN(ds.graph.weights, HORIZON, 2, channels=16,
                       spatial_channels=8, kernel=2),
        "ST-LLM": STLLM(n, HORIZON, 2, dim=32, num_heads=4, num_blocks=2,
                        frozen_blocks=1),
    }


def main() -> None:
    seed_everything(7)
    ds = load_dataset("metr-la", nodes=20, entries=1200, seed=7)
    idx = IndexDataset.from_dataset(ds, horizon=HORIZON)
    supports = dual_random_walk_supports(ds.graph.weights)

    rows = []
    for name, model in build_models(ds, supports).items():
        trainable = [p for p in model.parameters() if p.requires_grad]
        trainer = Trainer(
            model, Adam(trainable, lr=0.01),
            IndexBatchLoader(idx, "train", batch_size=16),
            IndexBatchLoader(idx, "val", batch_size=16),
            scaler=idx.scaler, seed=7)
        t0 = time.perf_counter()
        trainer.fit(EPOCHS)
        dt = time.perf_counter() - t0
        rows.append([name, f"{model.num_parameters():,}",
                     f"{trainer.best_val_mae():.3f}", f"{dt:.1f}s"])

    print(format_table(
        ["Model", "Params", "Best Val MAE (mph)", "Train time"], rows,
        title=f"Model zoo on METR-LA stand-in ({EPOCHS} epochs, "
              f"index-batching)"))


if __name__ == "__main__":
    main()
