"""Broader applicability: every registered model family on one dataset.

The paper argues index-batching works for *any* sequence-to-sequence
spatiotemporal model (§5.5).  This example discovers the implemented
architectures through the ``repro.api`` model registry and trains each on
the same index-batched METR-LA stand-in with one ``RunSpec`` per model —
adding a model to the comparison is now just ``@MODELS.register(...)``.

Run:  python examples/model_zoo.py
"""

from repro.api import RunSpec, list_models, run
from repro.profiling import format_table
from repro.utils.seeding import seed_everything


def main(scale: str = "small", epochs: int = 4) -> None:
    seed_everything(7)
    rows = []
    for name in list_models():
        spec = RunSpec(dataset="metr-la", model=name, batching="index",
                       scale=scale, seed=7, epochs=epochs)
        result = run(spec)
        model = result.artifacts.model
        rows.append([name, f"{model.num_parameters():,}",
                     f"{result.best_val_mae:.3f}",
                     f"{result.runtime_seconds:.1f}s"])

    print(format_table(
        ["Model", "Params", "Best Val MAE (mph)", "Train time"], rows,
        title=f"Model zoo on METR-LA stand-in ({epochs} epochs, "
              f"index-batching, scale={scale})"))


if __name__ == "__main__":
    main()
