"""Future-work extension: index-batching over *dynamic* graphs.

The paper's conclusion plans support for "dynamic graphs with temporal
signal".  This example builds a traffic dataset whose adjacency evolves
(congestion-aware edge reweighting + occasional closures), shows that the
index-batching idea extends to the adjacency sequence (store unique graph
epochs + an index instead of per-snapshot copies), and trains a model
whose supports follow the evolving graph.

Run:  python examples/dynamic_graphs.py
"""

import numpy as np

from repro.autograd.tensor import Tensor
from repro.datasets import load_dataset
from repro.datasets.dynamic import make_dynamic
from repro.models import PGTDCRNN
from repro.optim import Adam, l1_loss
from repro.preprocessing.dynamic_index import DynamicIndexDataset
from repro.utils import format_bytes
from repro.utils.seeding import seed_everything


def main(nodes: int = 24, entries: int = 1200, epochs: int = 4,
         horizon: int = 6) -> None:
    seed_everything(3)
    ds = load_dataset("metr-la", nodes=nodes, entries=entries, seed=3)
    dyn = make_dynamic(ds, num_graph_epochs=10, rewire_fraction=0.08, seed=3)
    print(f"dynamic dataset: {dyn.num_epochs} adjacency epochs over "
          f"{ds.num_entries} timesteps")
    print(f"per-snapshot graph duplication would take "
          f"{format_bytes(dyn.duplicated_nbytes())}; "
          f"indexed form takes {format_bytes(dyn.indexed_nbytes())} "
          f"({dyn.duplicated_nbytes() / dyn.indexed_nbytes():.0f}x less)")

    didx = DynamicIndexDataset.from_dynamic(dyn, horizon=horizon)
    model = PGTDCRNN(didx.supports_by_epoch[0], horizon, 2, hidden_dim=16)
    opt = Adam(model.parameters(), lr=0.01)

    train_starts = didx.signal.split_starts("train")
    rng = np.random.default_rng(0)
    for epoch in range(epochs):
        order = rng.permutation(train_starts)
        losses = []
        for batch_starts in np.array_split(order, max(len(order) // 16, 1)):
            # Group by adjacency epoch so each group shares one support set.
            for supports, x, y in didx.gather_by_epoch(batch_starts):
                model.cell.gates.supports = supports
                model.cell.candidate.supports = supports
                loss = l1_loss(model(Tensor(x.astype(np.float32))),
                               y[..., :1].astype(np.float32))
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
        print(f"epoch {epoch}  loss {np.mean(losses):.4f}")


if __name__ == "__main__":
    main()
