"""Regenerate the paper's full-scale scaling study (Figure 7) and the
single-GPU PeMS comparison (Table 4) from the calibrated performance model.

Everything here is simulated at true PeMS scale (11,160 sensors, 105,120
timesteps) — exactly the configuration that OOMs real machines without
index-batching.

Run:  python examples/scaling_study.py
"""

from repro.experiments.figure7 import run_figure7, report as figure7_report
from repro.experiments.figure9 import run_figure9, report as figure9_report
from repro.experiments.table4 import report as table4_report
from repro.viz import bar_chart, line_plot


def main(epochs: int = 30) -> None:
    print(table4_report())
    print()
    r7 = run_figure7(epochs=epochs)
    print(figure7_report(r7))
    print()
    print(line_plot(
        {"baseline-ddp": [(p.gpus, p.total_minutes)
                          for p in r7.points if p.strategy == "baseline-ddp"],
         "dist-index": [(p.gpus, p.total_minutes)
                        for p in r7.points if p.strategy == "dist-index"]},
        title="Figure 7: total runtime vs GPUs (minutes)", xlabel="GPUs"))
    print()
    r9 = run_figure9()
    print(figure9_report(r9))
    print()
    print(bar_chart(
        {f"{m} @{g}": {"compute": p.compute_seconds, "comm": p.comm_seconds}
         for m in ("ddp", "index")
         for g, p in sorted(r9.by(m).items()) if g in (4, 32, 128)},
        title="Figure 9: epoch time split (seconds)", unit="s"))
    print(f"\n4-worker aggregate memory: DDP {r9.ddp_total_memory_gb:.1f} GB, "
          f"generalized-index {r9.index_total_memory_gb:.1f} GB "
          f"({r9.ddp_total_memory_gb / r9.index_total_memory_gb:.1f}x less)")


if __name__ == "__main__":
    main()
