"""Quickstart: train a spatiotemporal GNN with index-batching.

The whole pipeline is one declarative ``RunSpec`` plus ``repro.api.run``::

    from repro.api import RunSpec, run

    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                   batching="index", scale="small", epochs=5)
    result = run(spec)

``run`` loads the (scaled-down synthetic) PeMS-BAY stand-in, preprocesses
it with the paper's index-batching (one data copy + window-start indices),
builds the model and optimizer from the registries, trains, and returns a
uniform result.  The available components are discoverable via
``repro.api.list_models()`` / ``list_datasets()`` / ``list_batchings()``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import RunSpec, run
from repro.utils import format_bytes
from repro.utils.seeding import seed_everything


def main(scale: str = "small", epochs: int = 5) -> None:
    seed_everything(0)

    # 1. Describe the run declaratively; every key is a registry entry.
    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale=scale, seed=0, epochs=epochs)
    print(f"spec: {spec.to_dict()}")

    # 2. Execute: dataset -> loaders -> model -> trainer, all from registries.
    result = run(spec, verbose=True)
    print(f"\ntrained {result.epochs_run} epochs in "
          f"{result.runtime_seconds:.1f}s; best val MAE "
          f"{result.best_val_mae:.2f} mph; preprocessing peak "
          f"{format_bytes(result.peak_bytes)}")

    # 3. The artifacts keep the live objects for follow-up analysis.
    model = result.artifacts.model
    print(f"model: {type(model).__name__} with "
          f"{model.num_parameters():,} parameters")

    # 4. Forecast: predict the first test window in original units.
    test = result.artifacts.loaders.test
    scaler = result.artifacts.loaders.scaler
    xb, yb = test.batch_at(np.arange(1))
    pred = model.predict(xb)[..., 0]
    pred_mph = scaler.inverse_transform_channel(pred, 0)
    truth_mph = scaler.inverse_transform_channel(yb[..., 0], 0)
    print(f"forecast MAE on one test window: "
          f"{np.abs(pred_mph - truth_mph).mean():.2f} mph")


if __name__ == "__main__":
    main()
