"""Quickstart: train a spatiotemporal GNN with index-batching.

Builds a synthetic PeMS-BAY stand-in, preprocesses it with the paper's
index-batching (one data copy + window-start indices, zero-copy snapshot
views), and trains PGT-DCRNN for a few epochs on a single device.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.training import Trainer
from repro.utils import format_bytes
from repro.utils.seeding import seed_everything


def main() -> None:
    seed_everything(0)

    # 1. Load a (scaled-down synthetic) traffic dataset.
    ds = load_dataset("pems-bay", nodes=32, entries=2000, seed=0)
    print(f"dataset: {ds.spec.name} stand-in, {ds.num_nodes} sensors, "
          f"{ds.num_entries} timesteps ({format_bytes(ds.nbytes)})")

    # 2. Index-batching preprocessing: one standardized copy + indices.
    idx = IndexDataset.from_dataset(ds)
    x, y = idx.snapshot(0)
    print(f"snapshots: {idx.num_snapshots} windows of horizon "
          f"{idx.horizon}; resident bytes {format_bytes(idx.resident_nbytes)}")
    print(f"zero-copy check: x.base is data -> {x.base is idx.data}")

    # 3. Model: diffusion-convolution GRU over the sensor graph.
    supports = dual_random_walk_supports(ds.graph.weights)
    model = PGTDCRNN(supports, horizon=idx.horizon, in_features=2,
                     hidden_dim=32)
    print(f"model: PGT-DCRNN with {model.num_parameters():,} parameters")

    # 4. Train.
    trainer = Trainer(
        model, Adam(model.parameters(), lr=0.01),
        IndexBatchLoader(idx, "train", batch_size=32),
        IndexBatchLoader(idx, "val", batch_size=32),
        scaler=idx.scaler)
    trainer.fit(5, verbose=True)

    # 5. Forecast: predict the next hour for the test split's first window.
    test_starts = idx.split_starts("test")
    xb, yb = idx.gather(test_starts[:1])
    pred = model.predict(xb.astype(np.float32))[..., 0]
    pred_mph = idx.scaler.inverse_transform_channel(pred, 0)
    truth_mph = idx.scaler.inverse_transform_channel(yb[..., 0], 0)
    print(f"\nforecast MAE on one test window: "
          f"{np.abs(pred_mph - truth_mph).mean():.2f} mph")


if __name__ == "__main__":
    main()
