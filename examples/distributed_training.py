"""Distributed training with the three data strategies of the paper.

Runs real DDP training over 4 ranks with:

- baseline DDP (on-demand remote batch fetches),
- distributed-index-batching (full local copies, comm-free shuffling),
- generalized-distributed-index-batching (partitions + batch shuffling),

and prints accuracy, simulated wall time, and per-category traffic for
each — the small-scale analogue of Figures 7 and 9.  Each strategy is one
``RunSpec``; the ``ProcessGroup.stats`` traffic accounting comes from the
run's artifacts.  The last run repeats dist-index on a second fabric
(``--transport``: ``thread`` = one real thread per rank, ``process`` =
one forked interpreter per rank over shared memory, ``socket`` = forked
ranks over TCP frames) to show the same fixed-seed loss curve training
on a different fabric.

Run:  python examples/distributed_training.py [--transport process]
"""

import argparse

from repro.api import RunSpec, STRATEGIES, TRANSPORTS, run
from repro.utils import format_bytes
from repro.utils.seeding import seed_everything


def run_strategy(strategy: str, scale: str, world: int, epochs: int,
                 transport: str = "sim"):
    spec = RunSpec(dataset="pems-bay", model="pgt-dcrnn", batching="index",
                   scale=scale, seed=1, strategy=strategy, world_size=world,
                   epochs=epochs, transport=transport)
    result = run(spec)
    trainer = result.artifacts.trainer
    comm = trainer.comm

    traffic = {k: format_bytes(v)
               for k, v in sorted(comm.stats.bytes_by_category.items())}
    print(f"\n{strategy} [{transport}]")
    print(f"  best val MAE      : {result.best_val_mae:.3f}")
    if transport == "sim":
        print(f"  simulated wall    : {comm.now * 1e3:.3f} ms "
              f"(tiny model on simulated A100s)")
    else:
        kind = {"thread": "rank threads",
                "process": "forked rank processes",
                "socket": "rank processes over TCP"}[transport]
        print(f"  measured wall     : {comm.now * 1e3:.1f} ms "
              f"({world} {kind})")
    print(f"  comm breakdown    : {traffic}")
    print(f"  shuffle mode      : {trainer.shuffle}")
    return result


def main(scale: str = "small", world: int = 4, epochs: int = 4,
         transport: str = "thread") -> None:
    seed_everything(1)
    distributed = [s for s in STRATEGIES if s != "single"]
    print(f"training across {world} simulated ranks at scale={scale!r}; "
          f"strategies: {distributed}")
    results = {s: run_strategy(s, scale, world, epochs)
               for s in distributed}
    refabric = run_strategy("dist-index", scale, world, epochs,
                            transport=transport)
    same = refabric.train_curve == results["dist-index"].train_curve
    print(f"\n{transport} vs sim fixed-seed curves bitwise identical: {same}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small")
    parser.add_argument("--world", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--transport", default="thread",
                        choices=[t for t in TRANSPORTS if t != "sim"],
                        help="fabric for the comparison rerun of "
                             "dist-index (sim is always the reference)")
    main(**vars(parser.parse_args()))
