"""Distributed training with the three data strategies of the paper.

Runs real DDP training over 4 simulated ranks with:

- baseline DDP (on-demand remote batch fetches),
- distributed-index-batching (full local copies, comm-free shuffling),
- generalized-distributed-index-batching (partitions + batch shuffling),

and prints accuracy, simulated wall time, and per-category traffic for
each — the small-scale analogue of Figures 7 and 9.

Run:  python examples/distributed_training.py
"""

from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.distributed import SimCommunicator
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.training import DDPStrategy, DDPTrainer
from repro.utils import format_bytes
from repro.utils.seeding import seed_everything

WORLD = 4
EPOCHS = 4


def run_strategy(strategy: DDPStrategy, idx: IndexDataset, supports) -> None:
    model = PGTDCRNN(supports, horizon=idx.horizon, in_features=2,
                     hidden_dim=16, seed=1)
    comm = SimCommunicator(WORLD)
    trainer = DDPTrainer(
        model, Adam(model.parameters(), lr=0.01), comm,
        IndexBatchLoader(idx, "train", batch_size=16),
        IndexBatchLoader(idx, "val", batch_size=16),
        strategy=strategy, scaler=idx.scaler, seed=1)
    trainer.fit(EPOCHS)

    traffic = {k: format_bytes(v)
               for k, v in sorted(comm.stats.bytes_by_category.items())}
    print(f"\n{strategy.value}")
    print(f"  best val MAE      : {trainer.best_val_mae():.3f}")
    print(f"  simulated wall    : {comm.now * 1e3:.3f} ms "
          f"(tiny model on simulated A100s)")
    print(f"  comm breakdown    : {traffic}")
    print(f"  shuffle mode      : {trainer.shuffle}")


def main() -> None:
    seed_everything(1)
    ds = load_dataset("pems-bay", nodes=24, entries=1500, seed=1)
    idx = IndexDataset.from_dataset(ds, horizon=6)
    supports = dual_random_walk_supports(ds.graph.weights)
    print(f"training on {ds.num_nodes} sensors x {ds.num_entries} steps "
          f"across {WORLD} simulated ranks")
    for strategy in (DDPStrategy.BASELINE_DDP, DDPStrategy.DIST_INDEX,
                     DDPStrategy.GENERALIZED_INDEX):
        run_strategy(strategy, idx, supports)


if __name__ == "__main__":
    main()
