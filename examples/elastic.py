"""Elastic scale end to end: reshard, autoscale, and plan capacity.

Walks the three pieces of ``repro.elastic``:

1. **Checkpoint resharding** — train at world 2, rewrite the checkpoint
   for world 4 with :func:`reshard_checkpoint` (the global batch is
   preserved), resume, and land on the *fresh* world-4 curve within
   1e-6 — the world size becomes a live knob instead of a rerun.
2. **Serving autoscaler** — a 2-shard forecast fleet under a
   500 -> 2200 -> 500 qps traffic step doubles to 4 shards when the p99
   breaches the SLO and halves back when traffic quiets, with every
   decision, latency, and membership change on the deterministic manual
   clock.
3. **Capacity planner** — the analytic perf/cost models pick the world
   size for a runtime budget and the shard envelope for a traffic/SLO
   budget, which seeds the autoscaler's setpoints.

Run it::

    PYTHONPATH=src python examples/elastic.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.api import RunSpec, run
from repro.batching import IndexBatchLoader
from repro.datasets import load_dataset
from repro.elastic import (
    AutoscalerPolicy,
    ShardAutoscaler,
    autoscaler_setpoints,
    plan_training,
    reshard_checkpoint,
    run_autoscaled_trace,
    shard_scaled_service_time,
)
from repro.graph import dual_random_walk_supports
from repro.models import PGTDCRNN
from repro.optim import Adam
from repro.preprocessing import IndexDataset
from repro.runtime import ProcessGroup
from repro.serving import ShardedSession
from repro.serving.service import ForecastService
from repro.training import DDPStrategy, DDPTrainer


def _trainer(idx, supports, *, world: int, global_batch: int = 16,
             seed: int = 0):
    model = PGTDCRNN(supports, horizon=4, in_features=2, hidden_dim=8,
                     seed=seed)
    return DDPTrainer(
        model, Adam(model.parameters(), lr=0.01), ProcessGroup.sim(world),
        IndexBatchLoader(idx, "train", global_batch // world),
        IndexBatchLoader(idx, "val", global_batch // world),
        strategy=DDPStrategy.DIST_INDEX, seed=seed, clip_norm=0.0)


def main(*, scale: str = "tiny", epochs: int = 2, nodes: int = 10,
         entries: int = 260, requests_per_tick: int = 40) -> dict:
    # -- 1. reshard a world-2 checkpoint to world 4 ----------------------
    ds = load_dataset("pems-bay", nodes=nodes, entries=entries, seed=0)
    idx = IndexDataset.from_dataset(ds, horizon=4)
    supports = dual_random_walk_supports(ds.graph.weights)

    fresh4 = [(h.train_loss, h.val_mae)
              for h in _trainer(idx, supports, world=4).fit(1 + epochs)]

    two = _trainer(idx, supports, world=2)
    two.fit(1)
    with tempfile.TemporaryDirectory(prefix="elastic-example-") as d:
        ckpt = os.path.join(d, "w2.npz")
        two.save_training_checkpoint(ckpt, epoch=1, step=0)
        report = reshard_checkpoint(ckpt, 4)
        print(f"reshard:    {report.summary()}")
        resumed = _trainer(idx, supports, world=4)
        resumed.resume(ckpt)
        curve = [(h.train_loss, h.val_mae)
                 for h in resumed.fit(1 + epochs)]
    drift = float(np.max(np.abs(
        np.asarray(curve[1:]) - np.asarray(fresh4[1:]))))
    print(f"            resumed-at-4 vs fresh-4 max diff {drift:.2e}")
    assert drift < 1e-6, "resharded continuation must match the fresh run"

    # -- 2. autoscale a shard fleet through a traffic step ---------------
    trained = run(RunSpec(dataset="pems-bay", model="pgt-dcrnn",
                          batching="index", scale=scale, seed=0, epochs=1))
    test = trained.artifacts.loaders.test
    pool, _ = test.batch_at(np.arange(test.batch_size))
    sess = ShardedSession(trained.artifacts.model,
                          trained.artifacts.loaders.scaler,
                          trained.artifacts.dataset.graph,
                          spec=trained.spec, num_shards=2, num_standby=2)
    svc = ForecastService(
        sess, max_batch=8, max_wait=5e-4,
        service_time=shard_scaled_service_time(sess, base=2e-3,
                                               per_item=1e-3))
    policy = AutoscalerPolicy(slo_p99=4.5e-3, min_shards=2, max_shards=4,
                              scale_down_at=0.4, transition_seconds=0.02)
    autoscaler = ShardAutoscaler(sess, policy, svc.clock)
    trace = run_autoscaled_trace(
        svc, pool.copy(), autoscaler,
        [(500.0, 3), (2200.0, 5), (500.0, 4)],
        seed=0, tick_requests=requests_per_tick)
    print(f"autoscale:  {trace.summary()}")
    for ev in trace.events:
        print(f"            {ev.from_shards}->{ev.to_shards} shards: "
              f"{ev.reason}")
    assert trace.shards_path[0] < max(trace.shards_path), \
        "the traffic step must force a scale-up"

    # -- 3. plan capacity from the analytic models -----------------------
    from repro.datasets.catalog import get_spec
    from repro.training.perfmodel import TrainingPerfModel, pgt_dcrnn_perf

    spec = get_spec("pems-bay")
    perf = TrainingPerfModel(
        spec, pgt_dcrnn_perf(spec.num_nodes, spec.horizon,
                             spec.train_features), batch_size=64)
    single = perf.run("dist-index", 1, epochs=10).total_seconds
    plan = plan_training(perf, strategy="dist-index", epochs=10,
                         total_budget_seconds=single * 0.75,
                         worlds=(1, 2, 4, 8))
    print(f"plan:       {plan.summary()}")
    print(f"            reshard 2->4 itself costs "
          f"{perf.reshard_seconds(2, 4):.1f} simulated s")
    setpoints = autoscaler_setpoints(
        low_qps=500.0, peak_qps=2200.0, slo_p99=9e-3,
        service_time=lambda batch, shards: (2e-3 + 1e-3 * batch) / shards,
        max_batch=8)
    print(f"            autoscaler setpoints from the traffic envelope: "
          f"[{setpoints.min_shards}, {setpoints.max_shards}] shards")

    return {
        "reshard_drift": drift,
        "shards_path": trace.shards_path,
        "slo_compliance": trace.slo_compliance,
        "planned_world": plan.world_size,
        "setpoints": (setpoints.min_shards, setpoints.max_shards),
    }


if __name__ == "__main__":
    main()
